//! The event-driven scheduler behind [`EventComm`]: a fixed pool of worker
//! OS threads multiplexing many lightweight rank tasks.
//!
//! ## Task lifecycle
//!
//! Each rank is a *task slot* cycling through:
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            v                                            │
//! Queued ─> Running ──(returns)──> Done                   │
//!            │  │                                         │
//!            │  └─(waker hits mid-unwind)─> RunningWake ──┘
//!            └──(parks)──> Parked ──(wake)──> Queued
//! ```
//!
//! A worker pops a rank off the ready queue, bumps the slot's *epoch*, and
//! executes the closure against a fresh [`EventComm`] (replaying the logged
//! prefix; see `event.rs`). The execution ends one of three ways: the
//! closure returns (task `Done`), panics for real (task `Done`, payload
//! propagated with the rank id), or unwinds with the yield sentinel — then
//! the worker *commits the park*: it stores the log back in the slot and
//! either parks the task or, if a waker already flagged it mid-unwind
//! (`RunningWake`), immediately re-queues it. This two-phase park is what
//! makes "sender deposits the message while the receiver is still
//! unwinding" race-free: the waiter is registered in the inbox *before* the
//! unwind starts, and a depositor that takes it while the slot is still
//! `Running` just flips it to `RunningWake`.
//!
//! ## Wakeups, timers, quiescence
//!
//! Message wakes are delivered by the depositing sender in batches (one
//! scheduler lock per flushed outbox). Deadlines (timed receives, sleeps)
//! sit in a min-heap keyed by virtual time and tagged with the park's epoch,
//! so a stale entry — the task was woken by a message first — is skipped by
//! construction. The virtual clock only advances at *global quiescence*:
//! every worker idle and nothing runnable. The last idle worker then jumps
//! the clock to the earliest pending deadline and fires it; if no deadline
//! is pending at quiescence, the world can provably never progress, and the
//! worker wakes every parked task with the [`CommError::Deadlock`] verdict
//! (`CommError` is what each parked receive then returns) — the same
//! semantics [`crate::SimComm`] pioneered, now on a parallel backend.
//!
//! ## Worker-pool sizing
//!
//! Tasks never block an OS thread (blocking is parking), so workers are pure
//! CPU: [`EventComm::run`] defaults to `2 × available_parallelism`, and
//! anything ≥ 1 is correct — `run_pooled(p, 1, …)` is a deterministic-ish
//! single-threaded executor, useful for debugging.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::Duration;

use crate::chaos::splitmix;
use crate::clock::VirtualClock;
use crate::event::{EventComm, ExecCtx, Inbox, Park, ReplayLog, TaskYield, Wake};
use crate::mailbox::{MatchStore, StoreStats};
use crate::sim::{ScheduleTrace, SimConfig};
use crate::thread_comm::describe_panic;
use crate::Tag;

/// Scheduling state of one rank task. See the module docs for the lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// In the ready queue, waiting for a worker.
    Queued,
    /// A worker is executing (or unwinding) it.
    Running,
    /// Running, and a waker already fired: re-queue at park-commit instead
    /// of parking.
    RunningWake,
    /// Parked: waiting on its registered waiter and/or a timer.
    Parked,
    /// Completed (returned or panicked).
    Done,
}

/// One rank's task slot: state machine + the suspended replay log.
struct TaskSlot {
    state: TaskState,
    /// The task's replay log while it is not executing.
    log: Option<ReplayLog>,
    /// Wake verdict to hand the next execution.
    wake: Option<Wake>,
    /// Incremented at each execution start; waiters and timers registered by
    /// execution N are valid only while the slot is `Parked` at epoch N.
    epoch: u64,
}

/// A pending virtual-time deadline. Min-heap order by deadline (field order
/// matters for the derived `Ord`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    deadline: Duration,
    rank: usize,
    epoch: u64,
    kind: TimerKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    /// A `recv_buf_timeout` deadline: wake with [`Wake::TimedOut`].
    RecvDeadline,
    /// A `sleep` wake-up: wake with [`Wake::SleepElapsed`].
    Sleep,
}

// ---------------------------------------------------------------------------
// Scheduled (verification) mode: deterministic single-worker pick policy.
// ---------------------------------------------------------------------------

/// One recorded scheduling point of a scheduled run
/// ([`EventComm::run_scheduled`]): which rank the single worker picked and
/// every rank that was runnable at that moment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventStep {
    /// The rank picked (mirrors the entry appended to the trace's choices).
    pub chosen: u32,
    /// Every runnable rank at this point, ascending.
    pub enabled: Vec<u32>,
}

/// Pick policy for scheduled runs: replay a choice list (lowest-runnable
/// fallback, same contract as the simulator) or draw from a seeded stream;
/// records every pick and its enabled set either way.
struct PickPolicy {
    replay: Option<VecDeque<u32>>,
    rng: u64,
    choices: Vec<u32>,
    steps: Vec<EventStep>,
    /// Runtime-detected no-progress verdict (scheduled mode converts the
    /// "stuck" invariant panic into a reported value so the explorer can
    /// treat it as a finding, not a crash).
    verdict: Option<String>,
}

impl PickPolicy {
    /// Pick one rank out of the ready queue and record the step. The ready
    /// queue is non-empty.
    fn pick(&mut self, ready: &mut VecDeque<usize>) -> usize {
        let mut enabled: Vec<u32> = ready.iter().map(|&r| r as u32).collect();
        enabled.sort_unstable();
        let pick = match &mut self.replay {
            Some(q) => match q.pop_front() {
                Some(c) if enabled.contains(&c) => c as usize,
                // Diverged or exhausted recording: lowest runnable.
                _ => enabled[0] as usize,
            },
            None => {
                self.rng = splitmix(self.rng);
                enabled[(self.rng % enabled.len() as u64) as usize] as usize
            }
        };
        self.choices.push(pick as u32);
        self.steps.push(EventStep { chosen: pick as u32, enabled });
        let pos = match ready.iter().position(|&r| r == pick) {
            Some(p) => p,
            None => panic!("picked rank {pick} is not in the ready queue"),
        };
        ready.remove(pos);
        pick
    }
}

/// Options for [`EventComm::run_scheduled`] — the verification entry point.
#[derive(Debug, Default, Clone)]
pub struct EventVerifyOpts {
    /// Arm the happens-before audit recording layer (requires the
    /// `hb-audit` cargo feature for the events to actually be recorded).
    pub audit: bool,
    #[cfg(feature = "seeded-bugs")]
    lost_wakeup_bug: bool,
}

impl EventVerifyOpts {
    /// Arm the guarded lost-wakeup bug in the message wake path: a woken
    /// task is marked `Queued` but never enqueued. Detection of exactly
    /// this bug is pinned by bruck-verify's regression tests.
    #[cfg(feature = "seeded-bugs")]
    pub fn with_lost_wakeup_bug(mut self) -> EventVerifyOpts {
        self.lost_wakeup_bug = true;
        self
    }
}

/// Outcome of one scheduled run: per-rank results (with panics captured),
/// the recorded schedule, the per-step enabled sets, and — when the runtime
/// could not finish the world — the no-progress verdict.
#[derive(Debug)]
pub struct EventRun<T> {
    /// One entry per rank: `None` if the rank never completed (the runtime
    /// got stuck), else the closure's return or its panic as a string.
    pub outcomes: Vec<Option<Result<T, String>>>,
    /// The schedule that was executed, replayable via
    /// [`EventComm::run_scheduled`] with `SimConfig::replay_trace`.
    pub trace: ScheduleTrace,
    /// Enabled set at every scheduling point, aligned with the trace.
    pub steps: Vec<EventStep>,
    /// Set when the scheduler proved it could make no progress with live
    /// tasks left (the symptom a lost wakeup manifests as), or when the
    /// worker died on a runtime invariant.
    pub stuck: Option<String>,
    /// The happens-before audit log (empty unless [`EventVerifyOpts::audit`]
    /// was set and the `hb-audit` feature is compiled in).
    #[cfg(feature = "hb-audit")]
    pub audit: Vec<AuditEvent>,
}

// ---------------------------------------------------------------------------
// Happens-before audit layer (compiled with the `hb-audit` feature).
// ---------------------------------------------------------------------------

/// Who performed a wake-path transition, for the audit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSource {
    /// A depositing sender (the flushing rank).
    Sender(usize),
    /// The quiescence timer step.
    Timer,
    /// The deadlock sweep.
    Sweep,
    /// Park-commit requeue (a wake landed mid-unwind).
    ParkCommit,
}

/// One wake-protocol transition, recorded by the audit layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditKind {
    /// A message was deposited into `dest`'s store.
    Deposit {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dest: usize,
        /// Message tag.
        tag: Tag,
    },
    /// A parking receive registered its readiness-list entry.
    WaiterArmed {
        /// The parking rank.
        rank: usize,
        /// Source the receive matches on.
        src: usize,
        /// Tag the receive matches on.
        tag: Tag,
        /// Epoch of the parking execution.
        epoch: u64,
    },
    /// A waiter was removed from the readiness list. Every taken waiter
    /// must be followed by a wake of that `(rank, epoch)` — the lost-wakeup
    /// invariant the auditor checks.
    WaiterTaken {
        /// The rank whose waiter was taken.
        rank: usize,
        /// Epoch the waiter was registered under.
        epoch: u64,
        /// Who took it.
        by: WakeSource,
    },
    /// A task was made runnable.
    Enqueued {
        /// The woken rank.
        rank: usize,
        /// The slot epoch the wake was applied at.
        epoch: u64,
        /// Who applied it.
        by: WakeSource,
    },
    /// A wake landed while the task was still unwinding (`RunningWake`):
    /// park-commit will requeue it.
    WakeFlagged {
        /// The woken rank.
        rank: usize,
        /// The slot epoch at flag time.
        epoch: u64,
    },
    /// A worker started executing the task at the given (fresh) epoch.
    ExecStart {
        /// The executing rank.
        rank: usize,
        /// The new epoch.
        epoch: u64,
    },
    /// Park-commit completed: the task is `Parked` at the given epoch.
    ParkCommitted {
        /// The parked rank.
        rank: usize,
        /// The parked epoch.
        epoch: u64,
    },
    /// The task completed (returned or panicked).
    TaskDone {
        /// The finished rank.
        rank: usize,
    },
    /// A stale wake (epoch or state mismatch) was correctly dropped.
    StaleDrop {
        /// The target rank.
        rank: usize,
        /// Epoch the wake was registered under.
        wake_epoch: u64,
        /// The slot's current epoch.
        slot_epoch: u64,
    },
}

/// One audit-log entry: the transition, the acting context (`rank`, or `p`
/// for the scheduler's timer/sweep steps), and the actor's vector clock
/// *after* the transition. Clocks have `p + 1` components; a woken task
/// joins its waker's clock at its next `ExecStart`, so "taken happens-before
/// the wake's observation" is checkable even on multi-worker runs where log
/// order is not causality.
#[derive(Debug, Clone)]
pub struct AuditEvent {
    /// The recorded transition.
    pub kind: AuditKind,
    /// Acting context: a rank, or `p` for scheduler steps.
    pub actor: usize,
    /// The actor's vector clock after this transition.
    pub clock: Vec<u64>,
}

#[cfg(feature = "hb-audit")]
struct AuditState {
    events: Vec<AuditEvent>,
    /// One clock per actor (`p` ranks + the scheduler context).
    clocks: Vec<Vec<u64>>,
    /// Clock to join into a rank at its next `ExecStart` (set by its waker).
    pending_join: Vec<Option<Vec<u64>>>,
}

#[cfg(feature = "hb-audit")]
impl AuditState {
    fn new(p: usize) -> AuditState {
        AuditState {
            events: Vec::new(),
            clocks: vec![vec![0; p + 1]; p + 1],
            pending_join: vec![None; p],
        }
    }

    fn record(&mut self, actor: usize, kind: AuditKind) {
        if let AuditKind::ExecStart { rank, .. } = kind {
            if let Some(j) = self.pending_join[rank].take() {
                for (c, v) in self.clocks[rank].iter_mut().zip(&j) {
                    *c = (*c).max(*v);
                }
            }
        }
        self.clocks[actor][actor] += 1;
        let clock = self.clocks[actor].clone();
        match kind {
            AuditKind::Enqueued { rank, .. } | AuditKind::WakeFlagged { rank, .. } => {
                let joined = match self.pending_join[rank].take() {
                    Some(mut old) => {
                        for (c, v) in old.iter_mut().zip(&clock) {
                            *c = (*c).max(*v);
                        }
                        old
                    }
                    None => clock.clone(),
                };
                self.pending_join[rank] = Some(joined);
            }
            _ => {}
        }
        self.events.push(AuditEvent { kind, actor, clock });
    }
}

/// Scheduler shared state (one mutex; workers also park on its condvar).
struct Sched {
    ready: VecDeque<usize>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    /// Workers currently waiting for work.
    idle: usize,
    /// Tasks not yet `Done`.
    live: usize,
    /// Total task executions (first runs + replays) — scheduler telemetry.
    executions: u64,
    /// A worker died on a runtime invariant violation: everyone bail out so
    /// the panic propagates instead of hanging the pool.
    aborted: bool,
    /// Deterministic pick policy for scheduled (verification) runs.
    policy: Option<PickPolicy>,
}

/// The shared world of one event-driven run: per-rank inboxes (sharded
/// locks), task slots, the scheduler, and the virtual clock.
pub struct EventWorld {
    inboxes: Vec<Mutex<Inbox>>,
    slots: Vec<Mutex<TaskSlot>>,
    sched: Mutex<Sched>,
    work: Condvar,
    clock: VirtualClock,
    stats: Arc<StoreStats>,
    workers: usize,
    /// The happens-before audit log (armed only by scheduled runs).
    #[cfg(feature = "hb-audit")]
    audit: Option<Mutex<AuditState>>,
    /// Guarded seeded bug: drop the enqueue of a message-woken parked task.
    #[cfg(feature = "seeded-bugs")]
    lost_wakeup_bug: bool,
}

/// Lock order (outermost first): inbox < slot < sched < clock. `ExecCtx`'s
/// own mutex is only ever touched by the task's current worker, outside all
/// of these.
impl EventWorld {
    fn new(p: usize, workers: usize) -> EventWorld {
        Self::new_opts(p, workers, None, false, false)
    }

    fn new_opts(
        p: usize,
        workers: usize,
        policy: Option<PickPolicy>,
        opts_audit: bool,
        lost_wakeup_bug: bool,
    ) -> EventWorld {
        assert!(p > 0, "communicator must have at least one rank");
        // Recording and bug arming only make sense under the deterministic
        // single-worker policy; `opts_audit` / `lost_wakeup_bug` are ignored
        // without their cargo features.
        let _ = (&policy, opts_audit, lost_wakeup_bug);
        let stats = StoreStats::new();
        EventWorld {
            inboxes: (0..p)
                .map(|_| {
                    Mutex::new(Inbox { store: MatchStore::new(Arc::clone(&stats)), waiter: None })
                })
                .collect(),
            slots: (0..p)
                .map(|_| {
                    Mutex::new(TaskSlot {
                        state: TaskState::Queued,
                        log: Some(ReplayLog::default()),
                        wake: None,
                        epoch: 0,
                    })
                })
                .collect(),
            sched: Mutex::new(Sched {
                ready: (0..p).collect(),
                timers: BinaryHeap::new(),
                idle: 0,
                live: p,
                executions: 0,
                aborted: false,
                policy,
            }),
            work: Condvar::new(),
            clock: VirtualClock::new(),
            stats,
            workers,
            #[cfg(feature = "hb-audit")]
            audit: opts_audit.then(|| Mutex::new(AuditState::new(p))),
            #[cfg(feature = "seeded-bugs")]
            lost_wakeup_bug,
        }
    }

    /// Record one audit transition (no-op unless the run armed the audit).
    #[cfg(feature = "hb-audit")]
    pub(crate) fn audit_record(&self, actor: usize, kind: AuditKind) {
        if let Some(a) = &self.audit {
            a.lock().unwrap_or_else(|p| p.into_inner()).record(actor, kind);
        }
    }

    /// The scheduler-context actor index for audit clocks.
    #[cfg(feature = "hb-audit")]
    fn sched_actor(&self) -> usize {
        self.size()
    }

    pub(crate) fn size(&self) -> usize {
        self.inboxes.len()
    }

    pub(crate) fn clock_now(&self) -> Duration {
        self.clock.now()
    }

    pub(crate) fn inbox(&self, rank: usize) -> MutexGuard<'_, Inbox> {
        self.inboxes[rank].lock().unwrap_or_else(|p| p.into_inner())
    }

    fn slot(&self, rank: usize) -> MutexGuard<'_, TaskSlot> {
        self.slots[rank].lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_sched(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Transition ranks whose waiter a depositor just took. Called by the
    /// flushing sender (`by`) with no inbox lock held.
    pub(crate) fn wake_on_message(&self, by: usize, ranks: &[usize]) {
        let mut runnable = Vec::with_capacity(ranks.len());
        for &rank in ranks {
            let mut slot = self.slot(rank);
            match slot.state {
                // Still unwinding from its park: flag it so park-commit
                // re-queues instead of parking.
                TaskState::Running => {
                    slot.wake = Some(Wake::Message);
                    slot.state = TaskState::RunningWake;
                    #[cfg(feature = "hb-audit")]
                    self.audit_record(
                        by,
                        AuditKind::WakeFlagged { rank, epoch: slot.epoch },
                    );
                }
                TaskState::Parked => {
                    slot.wake = Some(Wake::Message);
                    slot.state = TaskState::Queued;
                    #[cfg(feature = "seeded-bugs")]
                    if self.lost_wakeup_bug {
                        // Seeded bug: the state transition happens but the
                        // ready-queue push is lost. Schedule-dependent — it
                        // only fires when the receiver parked before this
                        // sender's flush — and manifests as a stuck world.
                        continue;
                    }
                    #[cfg(feature = "hb-audit")]
                    self.audit_record(
                        by,
                        AuditKind::Enqueued {
                            rank,
                            epoch: slot.epoch,
                            by: WakeSource::Sender(by),
                        },
                    );
                    runnable.push(rank);
                }
                // A taken waiter is a single-shot wake: any other state
                // means the readiness list and the slot disagree.
                other => panic!("message wake for rank {rank} in state {other:?}"),
            }
        }
        let _ = by;
        if !runnable.is_empty() {
            self.enqueue(&runnable);
        }
    }

    fn enqueue(&self, ranks: &[usize]) {
        let mut s = self.lock_sched();
        s.ready.extend(ranks.iter().copied());
        if ranks.len() == 1 {
            self.work.notify_one();
        } else {
            self.work.notify_all();
        }
    }

    fn add_timer(&self, deadline: Duration, rank: usize, epoch: u64, kind: TimerKind) {
        self.lock_sched().timers.push(Reverse(TimerEntry { deadline, rank, epoch, kind }));
    }

    fn task_done(&self) {
        let mut s = self.lock_sched();
        s.live -= 1;
        if s.live == 0 {
            self.work.notify_all();
        }
    }

    fn abort(&self) {
        let mut s = self.lock_sched();
        s.aborted = true;
        self.work.notify_all();
    }

    /// At quiescence: advance the virtual clock to the earliest pending
    /// deadline and pop everything due. `None` if no timers are pending
    /// (deadlock-sweep territory). Caller holds the scheduler lock.
    fn pop_due_timers(&self, s: &mut Sched) -> Option<Vec<TimerEntry>> {
        let Reverse(first) = *s.timers.peek()?;
        // advance_to never overshoots another pending deadline: `first` is
        // the heap minimum, so every other entry is ≥ the new clock. (A
        // stale entry can advance the clock early, but never past a live
        // deadline — timed receives still wait exactly their budget.)
        let now = self.clock.advance_to(first.deadline);
        let mut due = Vec::new();
        while let Some(&Reverse(e)) = s.timers.peek() {
            if e.deadline > now {
                break;
            }
            due.push(e);
            s.timers.pop();
        }
        Some(due)
    }

    /// Deliver due timers: remove matching waiters, wake matching parks.
    /// Stale entries (epoch moved on, or the task is no longer parked) are
    /// dropped. Returns the ranks made runnable.
    fn fire_timers(&self, due: &[TimerEntry]) -> Vec<usize> {
        let mut runnable = Vec::new();
        for e in due {
            if e.kind == TimerKind::RecvDeadline {
                // Deregister the readiness entry first so a late sender
                // cannot double-wake the task after its timeout fired.
                let mut inbox = self.inbox(e.rank);
                if inbox.waiter.as_ref().is_some_and(|w| w.epoch == e.epoch) {
                    inbox.waiter = None;
                    #[cfg(feature = "hb-audit")]
                    self.audit_record(
                        self.sched_actor(),
                        AuditKind::WaiterTaken {
                            rank: e.rank,
                            epoch: e.epoch,
                            by: WakeSource::Timer,
                        },
                    );
                }
            }
            let mut slot = self.slot(e.rank);
            if slot.state == TaskState::Parked && slot.epoch == e.epoch {
                slot.wake = Some(match e.kind {
                    TimerKind::RecvDeadline => Wake::TimedOut,
                    TimerKind::Sleep => Wake::SleepElapsed,
                });
                slot.state = TaskState::Queued;
                #[cfg(feature = "hb-audit")]
                self.audit_record(
                    self.sched_actor(),
                    AuditKind::Enqueued { rank: e.rank, epoch: e.epoch, by: WakeSource::Timer },
                );
                runnable.push(e.rank);
            } else {
                #[cfg(feature = "hb-audit")]
                self.audit_record(
                    self.sched_actor(),
                    AuditKind::StaleDrop {
                        rank: e.rank,
                        wake_epoch: e.epoch,
                        slot_epoch: slot.epoch,
                    },
                );
            }
        }
        runnable
    }

    /// Quiescent with no pending deadline: no schedule can make progress.
    /// Wake every parked task with the deadlock verdict (its blocked receive
    /// returns [`crate::CommError::Deadlock`]; a message that raced in still
    /// beats the verdict at re-execution).
    fn deadlock_sweep(&self) -> Vec<usize> {
        let mut runnable = Vec::new();
        for rank in 0..self.size() {
            let waiter = self.inbox(rank).waiter.take();
            let Some(w) = waiter else { continue };
            #[cfg(feature = "hb-audit")]
            self.audit_record(
                self.sched_actor(),
                AuditKind::WaiterTaken { rank, epoch: w.epoch, by: WakeSource::Sweep },
            );
            let mut slot = self.slot(rank);
            if slot.state == TaskState::Parked && slot.epoch == w.epoch {
                slot.wake = Some(Wake::Deadlocked);
                slot.state = TaskState::Queued;
                #[cfg(feature = "hb-audit")]
                self.audit_record(
                    self.sched_actor(),
                    AuditKind::Enqueued { rank, epoch: w.epoch, by: WakeSource::Sweep },
                );
                runnable.push(rank);
            } else {
                panic!("rank {rank}: dangling waiter (slot {:?} epoch {})", slot.state, slot.epoch);
            }
        }
        runnable
    }
}

/// Install the process-wide panic hook that silences [`TaskYield`] unwinds
/// (they are control flow, not failures) and forwards everything else to the
/// previous hook. Installed once, composes with user hooks.
fn install_yield_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<TaskYield>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Sets the abort flag if the worker unwinds on a runtime bug, so sibling
/// workers return (and the panic propagates) instead of waiting forever.
struct AbortOnPanic<'w>(&'w EventWorld);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

type Outcome<T> = Result<T, Box<dyn Any + Send>>;

/// Execute one scheduled task until it completes, panics, or parks.
fn execute<T, F>(world: &EventWorld, rank: usize, f: &F, results: &[Mutex<Option<Outcome<T>>>])
where
    T: Send,
    F: Fn(&EventComm<'_>) -> T + Sync,
{
    let ctx = {
        let mut slot = world.slot(rank);
        if slot.state != TaskState::Queued {
            panic!("executing rank {rank} in state {:?}", slot.state);
        }
        slot.state = TaskState::Running;
        slot.epoch += 1;
        let log = slot.log.take().unwrap_or_default();
        ExecCtx::new(log, slot.wake.take(), slot.epoch)
    };
    let epoch = {
        // Epoch was just set under the slot lock; re-derive for timer tags.
        let slot = world.slot(rank);
        slot.epoch
    };
    #[cfg(feature = "hb-audit")]
    world.audit_record(rank, AuditKind::ExecStart { rank, epoch });
    let comm = EventComm::attach(world, rank, ctx);
    let out = catch_unwind(AssertUnwindSafe(|| f(&comm)));
    let mut ctx = comm.detach();
    // Deliver any sends still buffered — on every exit path: trailing sends
    // of a completed task, sends before a park (usually already flushed),
    // and sends a panicking task completed before dying (they returned Ok,
    // so they must be delivered; peers then unblock or prove a deadlock).
    EventComm::flush_outbox(world, rank, &mut ctx);
    match out {
        Ok(v) => {
            if ctx.replaying() {
                panic!(
                    "rank {rank}: closure returned while {} logged ops were still \
                     unreplayed (nondeterministic closure?)",
                    "some"
                );
            }
            *results[rank].lock().unwrap_or_else(|p| p.into_inner()) = Some(Ok(v));
            let mut slot = world.slot(rank);
            slot.state = TaskState::Done;
            slot.log = None;
            drop(slot);
            #[cfg(feature = "hb-audit")]
            world.audit_record(rank, AuditKind::TaskDone { rank });
            world.task_done();
        }
        Err(payload) if payload.is::<TaskYield>() => {
            let park = match ctx.take_park() {
                Some(p) => p,
                None => panic!("rank {rank}: yielded without a park request"),
            };
            let mut slot = world.slot(rank);
            slot.log = Some(ctx.into_log());
            match slot.state {
                TaskState::Running => {
                    slot.state = TaskState::Parked;
                    match park {
                        Park::Recv { deadline: Some(d) } => {
                            world.add_timer(d, rank, epoch, TimerKind::RecvDeadline)
                        }
                        Park::Sleep { until } => {
                            world.add_timer(until, rank, epoch, TimerKind::Sleep)
                        }
                        Park::Recv { deadline: None } => {}
                    }
                    drop(slot);
                    #[cfg(feature = "hb-audit")]
                    world.audit_record(rank, AuditKind::ParkCommitted { rank, epoch });
                }
                // A sender deposited our message while we were unwinding:
                // skip the park, go straight back to the ready queue.
                TaskState::RunningWake => {
                    slot.state = TaskState::Queued;
                    drop(slot);
                    #[cfg(feature = "hb-audit")]
                    world.audit_record(
                        rank,
                        AuditKind::Enqueued { rank, epoch, by: WakeSource::ParkCommit },
                    );
                    world.enqueue(&[rank]);
                }
                other => panic!("park-commit for rank {rank} in state {other:?}"),
            }
        }
        Err(payload) => {
            *results[rank].lock().unwrap_or_else(|p| p.into_inner()) = Some(Err(payload));
            let mut slot = world.slot(rank);
            slot.state = TaskState::Done;
            slot.log = None;
            drop(slot);
            #[cfg(feature = "hb-audit")]
            world.audit_record(rank, AuditKind::TaskDone { rank });
            world.task_done();
        }
    }
}

fn worker_loop<T, F>(world: &EventWorld, f: &F, results: &[Mutex<Option<Outcome<T>>>])
where
    T: Send,
    F: Fn(&EventComm<'_>) -> T + Sync,
{
    let _abort_guard = AbortOnPanic(world);
    loop {
        let rank = {
            let mut s = world.lock_sched();
            loop {
                if s.aborted {
                    return;
                }
                if !s.ready.is_empty() {
                    let r = match s.policy.take() {
                        // Scheduled mode: the policy chooses among every
                        // runnable rank and records the scheduling point.
                        // (Taken and restored so the borrows don't overlap.)
                        Some(mut pol) => {
                            let r = pol.pick(&mut s.ready);
                            s.policy = Some(pol);
                            r
                        }
                        None => match s.ready.pop_front() {
                            Some(r) => r,
                            None => panic!("ready queue emptied while popping"),
                        },
                    };
                    s.executions += 1;
                    break r;
                }
                if s.live == 0 {
                    world.work.notify_all();
                    return;
                }
                s.idle += 1;
                if s.idle == world.workers {
                    // Global quiescence: this worker performs the progress
                    // step. Uncount ourselves first so a sibling's spurious
                    // condvar wake cannot see idle == workers and start a
                    // concurrent (and then falsely-stuck) progress attempt.
                    s.idle -= 1;
                    match world.pop_due_timers(&mut s) {
                        Some(due) => {
                            drop(s);
                            let runnable = world.fire_timers(&due);
                            s = world.lock_sched();
                            if !runnable.is_empty() {
                                s.ready.extend(runnable.iter().copied());
                                world.work.notify_all();
                            }
                        }
                        None => {
                            drop(s);
                            let runnable = world.deadlock_sweep();
                            s = world.lock_sched();
                            if runnable.is_empty() {
                                if s.live > 0 && s.ready.is_empty() {
                                    let msg = format!(
                                        "event runtime stuck: {} live tasks but nothing \
                                         runnable, no timers, no waiters",
                                        s.live
                                    );
                                    // Scheduled mode reports the no-progress
                                    // verdict as a value (the lost-wakeup
                                    // symptom the explorer hunts); normal
                                    // runs keep the loud invariant panic.
                                    match &mut s.policy {
                                        Some(pol) => {
                                            pol.verdict = Some(msg);
                                            s.aborted = true;
                                            return;
                                        }
                                        None => panic!("{msg}"),
                                    }
                                }
                            } else {
                                s.ready.extend(runnable.iter().copied());
                                world.work.notify_all();
                            }
                        }
                    }
                    continue;
                }
                s = world.work.wait(s).unwrap_or_else(|p| p.into_inner());
                s.idle -= 1;
            }
        };
        execute(world, rank, f, results);
    }
}

/// Summary of one [`EventComm::run_report`] run: scheduler and transport
/// telemetry for throughput benchmarks (`bruck-scale`) and leak checks.
#[derive(Debug, Clone)]
pub struct EventReport {
    /// Total messages deposited across the run.
    pub messages: usize,
    /// Task executions: `p` first runs plus every wake-driven re-execution.
    /// `executions / p` is the replay amplification factor.
    pub executions: u64,
    /// Worker threads the pool ran on.
    pub workers: usize,
    /// Messages still undelivered at the end (0 for well-formed programs).
    pub pending_messages: usize,
    /// Drained-but-unremoved match keys at the end (must be 0).
    pub dead_match_keys: usize,
}

/// Worker-pool size for [`EventComm::run`]: tasks never block an OS thread,
/// so a small multiple of the core count saturates the machine.
fn default_workers() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    (cores * 2).clamp(1, 64)
}

fn run_inner<T, F>(p: usize, workers: usize, f: &F) -> (Vec<Outcome<T>>, EventReport)
where
    T: Send,
    F: Fn(&EventComm<'_>) -> T + Sync,
{
    assert!(p > 0, "world size must be at least 1");
    let workers = workers.max(1);
    install_yield_hook();
    let world = EventWorld::new(p, workers);
    let results: Vec<Mutex<Option<Outcome<T>>>> = (0..p).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let world = &world;
            let results = &results;
            std::thread::Builder::new()
                .name(format!("bruck-worker-{w}"))
                .spawn_scoped(scope, move || worker_loop(world, f, results))
                .unwrap_or_else(|e| panic!("failed to spawn worker {w}: {e}"));
        }
    });
    let report = {
        let s = world.lock_sched();
        EventReport {
            messages: world.stats.deposited(),
            executions: s.executions,
            workers,
            pending_messages: world.stats.pending(),
            dead_match_keys: world.stats.dead_keys(),
        }
    };
    let outcomes = results
        .into_iter()
        .enumerate()
        .map(|(rank, cell)| {
            cell.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .unwrap_or_else(|| panic!("rank {rank} never completed"))
        })
        .collect();
    (outcomes, report)
}

fn propagate<T>(outcomes: Vec<Outcome<T>>) -> Vec<T> {
    let mut results = Vec::with_capacity(outcomes.len());
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(v) => results.push(v),
            Err(payload) => {
                panic!("rank {rank} panicked: {}", describe_panic(payload.as_ref()))
            }
        }
    }
    results
}

impl EventComm<'_> {
    /// Run an SPMD region on the event-driven runtime: `p` lightweight rank
    /// tasks multiplexed over a default-sized worker pool (2 × cores; always
    /// ≤ 2 × CPU count OS threads). Mirrors [`crate::ThreadComm::run`] —
    /// same closure shape, same rank-ordered results — but scales to
    /// P = 32,768 and beyond.
    ///
    /// The closure must be deterministic and free of external side effects:
    /// it may be executed several times per rank, with the completed prefix
    /// replayed from a log (see the module docs of `event.rs`).
    ///
    /// # Panics
    /// Propagates a rank's panic after the whole pool drains, with the
    /// failing rank's id prefixed (`rank <i> panicked: …`).
    pub fn run<T, F>(p: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&EventComm<'_>) -> T + Sync,
    {
        Self::run_pooled(p, default_workers(), f)
    }

    /// [`EventComm::run`] with an explicit worker-pool size (≥ 1).
    pub fn run_pooled<T, F>(p: usize, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&EventComm<'_>) -> T + Sync,
    {
        propagate(run_inner(p, workers, &f).0)
    }

    /// [`EventComm::run_pooled`] that also returns scheduler/transport
    /// telemetry ([`EventReport`]) — the `bruck-scale` entry point.
    pub fn run_report<T, F>(p: usize, workers: usize, f: F) -> (Vec<T>, EventReport)
    where
        T: Send,
        F: Fn(&EventComm<'_>) -> T + Sync,
    {
        let (outcomes, report) = run_inner(p, workers, &f);
        (propagate(outcomes), report)
    }

    /// Run an SPMD region under the *scheduled* (verification) mode: a
    /// single worker whose every pick among the runnable ranks is made by a
    /// deterministic policy — replayed from `cfg.replay` (lowest-runnable
    /// fallback, same contract as [`crate::SimComm`]) or drawn from
    /// `cfg.seed` — and recorded as a [`ScheduleTrace`] plus per-step
    /// enabled sets.
    ///
    /// Unlike [`EventComm::run`], nothing panics out of this entry point:
    /// per-rank panics are captured as strings, ranks that never completed
    /// come back as `None`, and a no-progress world (the lost-wakeup
    /// symptom) is reported in [`EventRun::stuck`]. This is the substrate
    /// `bruck-verify`'s wakeup-protocol auditor explores.
    pub fn run_scheduled<T, F>(p: usize, cfg: &SimConfig, opts: EventVerifyOpts, f: F) -> EventRun<T>
    where
        T: Send,
        F: Fn(&EventComm<'_>) -> T + Sync,
    {
        assert!(p > 0, "world size must be at least 1");
        install_yield_hook();
        let policy = PickPolicy {
            replay: cfg.replay.clone().map(VecDeque::from),
            rng: splitmix(cfg.seed ^ 0x5eed_5c4e_d01e_d001),
            choices: Vec::new(),
            steps: Vec::new(),
            verdict: None,
        };
        #[cfg(feature = "seeded-bugs")]
        let bug = opts.lost_wakeup_bug;
        #[cfg(not(feature = "seeded-bugs"))]
        let bug = false;
        let world = EventWorld::new_opts(p, 1, Some(policy), opts.audit, bug);
        let results: Vec<Mutex<Option<Outcome<T>>>> = (0..p).map(|_| Mutex::new(None)).collect();
        let f = &f;
        let join_err = std::thread::scope(|scope| {
            let world = &world;
            let results = &results;
            let h = std::thread::Builder::new()
                .name("bruck-verify-worker".into())
                .spawn_scoped(scope, move || worker_loop(world, f, results))
                .unwrap_or_else(|e| panic!("failed to spawn scheduled worker: {e}"));
            h.join().err()
        });
        let pol = {
            let mut s = world.lock_sched();
            match s.policy.take() {
                Some(p) => p,
                None => panic!("scheduled run lost its pick policy"),
            }
        };
        let stuck = match join_err {
            Some(payload) => {
                Some(format!("worker panicked: {}", describe_panic(payload.as_ref())))
            }
            None => pol.verdict,
        };
        let outcomes = results
            .into_iter()
            .map(|cell| {
                cell.into_inner().unwrap_or_else(|p| p.into_inner()).take().map(|o| match o {
                    Ok(v) => Ok(v),
                    Err(payload) => Err(describe_panic(payload.as_ref())),
                })
            })
            .collect();
        #[cfg(feature = "hb-audit")]
        let audit = world
            .audit
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()).events)
            .unwrap_or_default();
        EventRun {
            outcomes,
            trace: ScheduleTrace {
                p,
                seed: cfg.seed,
                meta: cfg.meta.clone(),
                choices: pol.choices,
            },
            steps: pol.steps,
            stuck,
            #[cfg(feature = "hb-audit")]
            audit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommError, Communicator, MsgBuf, ReduceOp};
    use std::time::Duration;

    #[test]
    fn ring_pass_all_sizes_and_pools() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            for workers in [1usize, 2, 4] {
                let results = EventComm::run_pooled(p, workers, |comm| {
                    let me = comm.rank();
                    let right = (me + 1) % comm.size();
                    let left = (me + comm.size() - 1) % comm.size();
                    comm.send(right, 5, &[me as u8]).unwrap();
                    comm.recv(left, 5).unwrap()[0] as usize
                });
                for (me, got) in results.iter().enumerate() {
                    assert_eq!(*got, (me + p - 1) % p, "p={p} workers={workers}");
                }
            }
        }
    }

    #[test]
    fn self_send_is_visible_through_the_outbox_flush() {
        let r = EventComm::run(3, |comm| {
            comm.send(comm.rank(), 9, &[comm.rank() as u8 + 10]).unwrap();
            comm.recv(comm.rank(), 9).unwrap()[0]
        });
        assert_eq!(r, vec![10, 11, 12]);
    }

    #[test]
    fn more_ranks_than_workers_multiplexes() {
        // 64 ranks on 2 workers: the whole point of the runtime.
        let sums = EventComm::run_pooled(64, 2, |comm| {
            comm.allreduce_u64(comm.rank() as u64, ReduceOp::Sum).unwrap()
        });
        assert!(sums.iter().all(|&s| s == 64 * 63 / 2));
    }

    #[test]
    fn collectives_match_threaded_semantics() {
        for p in [1usize, 2, 3, 5, 9, 16] {
            let out = EventComm::run(p, |comm| {
                comm.barrier().unwrap();
                let sum = comm.allreduce_u64(comm.rank() as u64, ReduceOp::Sum).unwrap();
                let all = comm.allgather_u64(100 + comm.rank() as u64).unwrap();
                let counts: Vec<usize> = (0..p).map(|d| comm.rank() * 1000 + d).collect();
                let t = comm.alltoall_counts(&counts).unwrap();
                (sum, all, t)
            });
            let expect_sum = (p as u64 * (p as u64 - 1)) / 2;
            for (me, (sum, all, t)) in out.iter().enumerate() {
                assert_eq!(*sum, expect_sum);
                assert_eq!(*all, (0..p as u64).map(|r| 100 + r).collect::<Vec<_>>());
                for (src, &c) in t.iter().enumerate() {
                    assert_eq!(c, src * 1000 + me);
                }
            }
        }
    }

    #[test]
    fn scheduled_runs_are_deterministic_and_replayable() {
        let ring = |comm: &EventComm<'_>| {
            let me = comm.rank();
            let right = (me + 1) % comm.size();
            let left = (me + comm.size() - 1) % comm.size();
            comm.send(right, 5, &[me as u8]).unwrap();
            comm.recv(left, 5).unwrap()[0] as usize
        };
        let cfg = SimConfig::from_seed(42);
        let a = EventComm::run_scheduled(3, &cfg, EventVerifyOpts::default(), ring);
        assert!(a.stuck.is_none(), "stuck: {:?}", a.stuck);
        for (me, out) in a.outcomes.iter().enumerate() {
            assert_eq!(*out, Some(Ok((me + 2) % 3)));
        }
        assert_eq!(a.steps.len(), a.trace.choices.len());
        for (step, &choice) in a.steps.iter().zip(&a.trace.choices) {
            assert_eq!(step.chosen, choice);
            assert!(step.enabled.contains(&choice));
        }
        // Same seed reproduces the schedule; replaying the trace does too.
        let b = EventComm::run_scheduled(3, &cfg, EventVerifyOpts::default(), ring);
        assert_eq!(b.trace.choices, a.trace.choices);
        let c = EventComm::run_scheduled(
            3,
            &SimConfig::replay_trace(&a.trace),
            EventVerifyOpts::default(),
            ring,
        );
        assert_eq!(c.trace.choices, a.trace.choices);
        assert_eq!(c.steps, a.steps);
    }

    #[test]
    fn scheduled_replay_forces_the_chosen_interleaving() {
        // Force rank 1 to run (and park) before rank 0 ever executes.
        let cfg = SimConfig {
            seed: 0,
            replay: Some(vec![1, 0]),
            meta: String::new(),
            record_steps: false,
        };
        let run = EventComm::run_scheduled(2, &cfg, EventVerifyOpts::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[7]).unwrap();
                0
            } else {
                comm.recv(0, 3).unwrap()[0]
            }
        });
        assert!(run.stuck.is_none());
        assert_eq!(run.outcomes[1], Some(Ok(7)));
        assert_eq!(&run.trace.choices[..2], &[1, 0]);
    }

    #[cfg(feature = "hb-audit")]
    #[test]
    fn audit_log_records_the_wake_protocol() {
        let cfg = SimConfig {
            seed: 0,
            replay: Some(vec![1, 0]),
            meta: String::new(),
            record_steps: false,
        };
        let opts = EventVerifyOpts { audit: true, ..Default::default() };
        let run = EventComm::run_scheduled(2, &cfg, opts, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[7]).unwrap();
            } else {
                comm.recv(0, 3).unwrap();
            }
        });
        assert!(run.stuck.is_none());
        // Rank 1 parked first, so the protocol must show: waiter armed by 1,
        // deposit + waiter taken + enqueue by 0, then rank 1 finishing.
        let kinds: Vec<&AuditKind> = run.audit.iter().map(|e| &e.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, AuditKind::WaiterArmed { rank: 1, src: 0, tag: 3, .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, AuditKind::Deposit { src: 0, dest: 1, tag: 3 })));
        assert!(kinds.iter().any(|k| matches!(
            k,
            AuditKind::WaiterTaken { rank: 1, by: WakeSource::Sender(0), .. }
        )));
        assert!(kinds.iter().any(|k| matches!(
            k,
            AuditKind::Enqueued { rank: 1, by: WakeSource::Sender(0), .. }
        )));
        assert!(kinds.iter().any(|k| matches!(k, AuditKind::TaskDone { rank: 1 })));
        // The woken rank's next ExecStart joins the waker's clock: its clock
        // must dominate the enqueue event's clock (happens-before visible).
        let enq_clock = run
            .audit
            .iter()
            .find(|e| matches!(e.kind, AuditKind::Enqueued { rank: 1, .. }))
            .map(|e| e.clock.clone())
            .expect("enqueue recorded");
        let wake_exec = run
            .audit
            .iter()
            .filter(|e| matches!(e.kind, AuditKind::ExecStart { rank: 1, .. }))
            .next_back()
            .expect("rank 1 re-executed");
        for (a, b) in wake_exec.clock.iter().zip(&enq_clock) {
            assert!(a >= b, "wake exec clock must dominate the enqueue clock");
        }
    }

    #[cfg(feature = "seeded-bugs")]
    #[test]
    fn seeded_lost_wakeup_goes_stuck_under_a_parking_schedule() {
        // Receiver parks first, then the sender's flush loses the enqueue.
        let cfg = SimConfig {
            seed: 0,
            replay: Some(vec![1, 0]),
            meta: String::new(),
            record_steps: false,
        };
        let opts = EventVerifyOpts::default().with_lost_wakeup_bug();
        let run = EventComm::run_scheduled(2, &cfg, opts, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[7]).unwrap();
                0
            } else {
                comm.recv(0, 3).unwrap()[0]
            }
        });
        let stuck = run.stuck.expect("lost wakeup must leave the world stuck");
        assert!(stuck.contains("stuck"), "unexpected verdict: {stuck}");
        assert_eq!(run.outcomes[0], Some(Ok(0)), "sender still completes");
        assert_eq!(run.outcomes[1], None, "lost receiver never completes");
        // The sender-first schedule dodges the bug: the message is already
        // in the store when the receiver first executes, so nobody parks.
        let dodge = SimConfig {
            seed: 0,
            replay: Some(vec![0, 1]),
            meta: String::new(),
            record_steps: false,
        };
        let ok = EventComm::run_scheduled(
            2,
            &dodge,
            EventVerifyOpts::default().with_lost_wakeup_bug(),
            |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 3, &[7]).unwrap();
                    0
                } else {
                    comm.recv(0, 3).unwrap()[0]
                }
            },
        );
        assert!(ok.stuck.is_none(), "schedule-dependent bug fired unconditionally");
        assert_eq!(ok.outcomes[1], Some(Ok(7)));
    }

    #[test]
    fn truncated_recv_is_non_destructive() {
        EventComm::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &(0u8..16).collect::<Vec<u8>>()).unwrap();
            } else {
                let mut small = [0u8; 4];
                let err = comm.recv_into(0, 0, &mut small).unwrap_err();
                assert_eq!(err, CommError::Truncated { message_len: 16, buffer_len: 4 });
                let mut big = [0u8; 16];
                assert_eq!(comm.recv_into(0, 0, &mut big).unwrap(), 16);
                assert_eq!(big.to_vec(), (0u8..16).collect::<Vec<u8>>());
            }
        });
    }

    #[test]
    fn virtual_timeout_fires_at_exactly_the_budget_instantly() {
        let budget = Duration::from_secs(3600); // an hour of virtual time
        let wall = std::time::Instant::now();
        let results = EventComm::run(2, |comm| {
            if comm.rank() == 0 {
                comm.recv_buf_timeout(1, 9, budget).map(|_| ())
            } else {
                comm.sleep(Duration::from_millis(5));
                Ok(())
            }
        });
        match &results[0] {
            Err(CommError::Timeout { src: 1, tag: 9, waited }) => assert_eq!(*waited, budget),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(wall.elapsed() < budget, "virtual time must not consume wall-clock time");
    }

    #[test]
    fn sleep_advances_virtual_clock_exactly() {
        let results = EventComm::run(1, |comm| {
            let t0 = comm.now();
            comm.sleep(Duration::from_millis(250));
            comm.now() - t0
        });
        assert_eq!(results[0], Duration::from_millis(250));
    }

    #[test]
    fn deadlock_is_proved_not_hung() {
        let results = EventComm::run(2, |comm| {
            // Both ranks receive first: a textbook deadlock.
            let peer = 1 - comm.rank();
            comm.recv_buf(peer, 1)
        });
        for r in &results {
            assert!(
                matches!(r, Err(CommError::Deadlock { .. })),
                "expected proved deadlock, got {r:?}"
            );
        }
    }

    #[test]
    fn timed_wait_escapes_a_deadlock() {
        let results = EventComm::run(2, |comm| {
            let peer = 1 - comm.rank();
            if comm.rank() == 0 {
                let first = comm.recv_buf_timeout(peer, 1, Duration::from_millis(10));
                comm.send(peer, 1, b"go").unwrap();
                first.map(|_| ())
            } else {
                comm.recv_buf(peer, 1).map(|_| ())
            }
        });
        assert!(matches!(results[0], Err(CommError::Timeout { .. })));
        assert!(results[1].is_ok());
    }

    #[test]
    fn panic_on_one_rank_propagates_with_rank_id_not_a_hang() {
        let caught = std::panic::catch_unwind(|| {
            EventComm::run(2, |comm| {
                if comm.rank() == 0 {
                    panic!("injected bug on rank 0");
                }
                // Rank 1 blocks on a message that can never arrive; the
                // runtime proves the deadlock so the pool drains, then
                // rank 0's real panic is propagated.
                let _ = comm.recv_buf(0, 1);
            })
        });
        let payload = caught.expect_err("rank 0 panicked");
        let msg = describe_panic(payload.as_ref());
        assert!(msg.contains("rank 0 panicked"), "{msg}");
        assert!(msg.contains("injected bug"), "{msg}");
    }

    #[test]
    fn nonovertaking_same_tag_across_replays() {
        EventComm::run_pooled(2, 2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u8 {
                    comm.send(1, 3, &[i]).unwrap();
                }
            } else {
                for i in 0..100u8 {
                    assert_eq!(comm.recv(0, 3).unwrap(), vec![i]);
                }
            }
        });
    }

    #[test]
    fn report_counts_messages_and_replays_without_leaks() {
        let (_, report) = EventComm::run_report(8, 2, |comm| {
            comm.barrier().unwrap();
            comm.allreduce_u64(1, ReduceOp::Sum).unwrap()
        });
        assert!(report.messages > 0);
        assert!(report.executions >= 8, "each rank executes at least once");
        assert_eq!(report.workers, 2);
        assert_eq!(report.pending_messages, 0, "no leaked messages");
        assert_eq!(report.dead_match_keys, 0, "no stranded match keys");
    }

    #[test]
    fn zero_copy_on_first_delivery() {
        // The receiver's first (live) delivery aliases the sender's region —
        // the replay log keeps its own copy, but the algorithm-visible path
        // stays zero-copy.
        let ptrs = EventComm::run_pooled(2, 1, |comm| {
            if comm.rank() == 0 {
                let region = MsgBuf::from_vec((0u8..64).collect());
                let ptr = region.as_slice().as_ptr() as usize;
                comm.send_buf(1, 0, region.slice(16..48)).unwrap();
                // Keep rank 0 alive until rank 1 received, so the region's
                // refcount proves sharing (not required for correctness).
                (ptr, 0)
            } else {
                let got = comm.recv_buf(0, 0).unwrap();
                assert_eq!(got, (16u8..48).collect::<Vec<u8>>());
                (0, got.as_slice().as_ptr() as usize)
            }
        });
        assert_eq!(ptrs[0].0 + 16, ptrs[1].1);
    }

    #[test]
    fn probe_sees_deposited_messages() {
        let results = EventComm::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, &[1, 2, 3]).unwrap();
                // Force the outbox out: probe flushes on entry.
                comm.probe(0, 99).unwrap();
                comm.recv(1, 5).unwrap();
                0
            } else {
                // Wait for the message, then probe its length.
                let got = comm.recv_buf(0, 4).unwrap();
                comm.send(0, 5, &[]).unwrap();
                got.len()
            }
        });
        assert_eq!(results[1], 3);
    }

    #[test]
    fn wrapper_stack_composes_metered_over_event() {
        use crate::MeteredComm;
        let totals = EventComm::run_pooled(4, 2, |comm| {
            let metered = MeteredComm::new(comm);
            metered.barrier().unwrap();
            let sum = metered.allreduce_u64(metered.rank() as u64, ReduceOp::Sum).unwrap();
            assert_eq!(sum, 6);
            let m = metered.metrics();
            m.logical.sent_msgs + m.reserved.sent_msgs
        });
        assert!(totals.iter().all(|&t| t > 0), "every rank metered its sends: {totals:?}");
    }
}
