//! Memory-footprint model: the auxiliary space each algorithm allocates
//! beyond the user's send/receive buffers.
//!
//! §3.2 is explicit that two-phase Bruck "requires more space in the
//! transfer phases to optimize communication time" (the monolithic `P × N`
//! working buffer), and padding doubles that again. This module quantifies
//! the trade-off so the selector can respect a memory budget.

use crate::nonuniform::AlltoallvAlgorithm;

/// Auxiliary bytes allocated by one call of `algo` on one rank, excluding
/// the caller's own send/receive buffers and O(P) index arrays.
///
/// * `p` — communicator size; `n_max` — global maximum block size;
/// * `send_total` / `recv_total` — this rank's total send/receive volume.
pub fn memory_overhead_bytes(
    algo: AlltoallvAlgorithm,
    p: usize,
    n_max: usize,
    send_total: usize,
    recv_total: usize,
) -> usize {
    let step_wire = |avg_factor: usize| {
        // One step's pack + unpack staging: ≈ (P+1)/2 blocks of ~N/avg each.
        2 * (p + 1) / 2 * (n_max / avg_factor.max(1))
    };
    match algo {
        // Pairwise sends straight out of user buffers.
        AlltoallvAlgorithm::Reference
        | AlltoallvAlgorithm::SpreadOut
        | AlltoallvAlgorithm::Vendor => 0,
        // The monolithic working buffer plus one step's wire staging.
        AlltoallvAlgorithm::TwoPhaseBruck => p * n_max + step_wire(2),
        // Padded send and receive images of the whole exchange.
        AlltoallvAlgorithm::PaddedBruck | AlltoallvAlgorithm::PaddedAlltoall => {
            2 * p * n_max + step_wire(1)
        }
        // Pointer-array staging holds every forwarded block (up to the whole
        // receive volume) plus per-step combined buffers.
        AlltoallvAlgorithm::Sloav => recv_total + step_wire(2),
        // Leaders hold the whole group's data both ways; amortized per rank
        // this is a send + receive image.
        AlltoallvAlgorithm::Hierarchical => send_total + recv_total,
        // Intermediates hold one piece of every block: a full send image in
        // aggregate, 1/P per rank of the global volume ≈ send_total.
        AlltoallvAlgorithm::RankaTwoStage => send_total + recv_total / p.max(1),
    }
}

/// The cheapest algorithm under the §3.3 time model whose memory overhead
/// fits `budget_bytes` (assumes uniform loads: totals ≈ `p·n_max/2`).
pub fn select_algorithm_with_budget(
    p: usize,
    n_max: usize,
    budget_bytes: usize,
    params: &crate::CostParams,
) -> AlltoallvAlgorithm {
    let totals = p * n_max / 2;
    let candidates = [
        AlltoallvAlgorithm::PaddedBruck,
        AlltoallvAlgorithm::TwoPhaseBruck,
        AlltoallvAlgorithm::SpreadOut,
    ];
    let cost = |algo: AlltoallvAlgorithm| match algo {
        AlltoallvAlgorithm::PaddedBruck => crate::padded_bruck_cost(p, n_max, params),
        AlltoallvAlgorithm::TwoPhaseBruck => crate::two_phase_bruck_cost(p, n_max, params),
        _ => crate::spread_out_cost(p, n_max, params),
    };
    candidates
        .into_iter()
        .filter(|&a| memory_overhead_bytes(a, p, n_max, totals, totals) <= budget_bytes)
        .min_by(|&a, &b| cost(a).partial_cmp(&cost(b)).expect("finite costs"))
        // Spread-out needs no auxiliary memory, so the filter never empties.
        .expect("spread-out always fits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostParams;

    #[test]
    fn footprints_order_as_the_paper_describes() {
        let (p, n) = (1024, 512);
        let totals = p * n / 2;
        let of = |a| memory_overhead_bytes(a, p, n, totals, totals);
        assert_eq!(of(AlltoallvAlgorithm::Vendor), 0);
        // Padding costs about twice the two-phase working buffer.
        assert!(of(AlltoallvAlgorithm::PaddedBruck) > of(AlltoallvAlgorithm::TwoPhaseBruck));
        assert!(of(AlltoallvAlgorithm::TwoPhaseBruck) >= p * n);
        assert!(of(AlltoallvAlgorithm::Sloav) >= totals);
    }

    #[test]
    fn budget_selection_degrades_gracefully() {
        let params = CostParams::default();
        let (p, n) = (1024, 64);
        // Unlimited budget in the small-N regime: a Bruck variant wins.
        let free = select_algorithm_with_budget(p, n, usize::MAX, &params);
        assert!(matches!(
            free,
            AlltoallvAlgorithm::TwoPhaseBruck | AlltoallvAlgorithm::PaddedBruck
        ));
        // Zero budget: only spread-out fits.
        assert_eq!(
            select_algorithm_with_budget(p, n, 0, &params),
            AlltoallvAlgorithm::SpreadOut
        );
        // A budget that fits two-phase but not padded.
        let two_phase_need =
            memory_overhead_bytes(AlltoallvAlgorithm::TwoPhaseBruck, p, 8, p * 4, p * 4);
        let picked = select_algorithm_with_budget(p, 8, two_phase_need, &params);
        assert_eq!(picked, AlltoallvAlgorithm::TwoPhaseBruck, "padded would win on time at N=8");
    }
}
