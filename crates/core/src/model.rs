//! The paper's theoretical performance model (§3.3) and the runtime
//! algorithm selector it motivates.

use crate::common::ceil_log2;
use crate::nonuniform::AlltoallvAlgorithm;

/// α–β point-to-point cost parameters: a message of `n` bytes costs
/// `α + n·β` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Latency per message (seconds).
    pub alpha: f64,
    /// Transfer time per byte (seconds/byte).
    pub beta: f64,
}

impl Default for CostParams {
    /// Aries-interconnect-flavoured defaults (≈2 µs latency, ≈2.8 GB/s
    /// effective per-rank all-to-all bandwidth) — see DESIGN.md §5.
    fn default() -> Self {
        CostParams { alpha: 2.0e-6, beta: 1.0 / 2.8e9 }
    }
}

/// Equation (1): padded Bruck sends `log P · (P+1)/2` blocks of exactly `N`
/// bytes.
pub fn padded_bruck_cost(p: usize, n_max: usize, params: &CostParams) -> f64 {
    let logp = f64::from(ceil_log2(p));
    let blocks = (p as f64 + 1.0) / 2.0;
    params.alpha * logp + params.beta * logp * blocks * n_max as f64
}

/// Equation (2): two-phase Bruck doubles the latency (metadata + data), adds
/// 4 bytes of metadata per block, and moves blocks of average size `N/2`
/// (uniform distribution assumption of §4.1).
pub fn two_phase_bruck_cost(p: usize, n_max: usize, params: &CostParams) -> f64 {
    let logp = f64::from(ceil_log2(p));
    let blocks = (p as f64 + 1.0) / 2.0;
    2.0 * params.alpha * logp
        + 4.0 * params.beta * logp * blocks
        + (n_max as f64 / 2.0) * params.beta * logp * blocks
}

/// Linear-baseline cost: `P − 1` messages of average size `N/2`.
pub fn spread_out_cost(p: usize, n_max: usize, params: &CostParams) -> f64 {
    let msgs = (p as f64 - 1.0).max(0.0);
    params.alpha * msgs + params.beta * msgs * n_max as f64 / 2.0
}

/// Inequality (3): padded Bruck beats two-phase Bruck iff
/// `(N − 8)(P + 1)β < 4α`.
pub fn padded_beats_two_phase(p: usize, n_max: usize, params: &CostParams) -> bool {
    (n_max as f64 - 8.0) * (p as f64 + 1.0) * params.beta < 4.0 * params.alpha
}

/// Pick the cheapest of the three practical algorithms under the model —
/// the runtime selection a vendor `MPI_Alltoallv` would make (§7).
pub fn select_algorithm(p: usize, n_max: usize, params: &CostParams) -> AlltoallvAlgorithm {
    let padded = padded_bruck_cost(p, n_max, params);
    let two_phase = two_phase_bruck_cost(p, n_max, params);
    let spread = spread_out_cost(p, n_max, params);
    if spread <= padded && spread <= two_phase {
        AlltoallvAlgorithm::SpreadOut
    } else if padded <= two_phase {
        AlltoallvAlgorithm::PaddedBruck
    } else {
        AlltoallvAlgorithm::TwoPhaseBruck
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARAMS: CostParams = CostParams { alpha: 2.0e-6, beta: 1.0 / 2.8e9 };

    #[test]
    fn inequality_three_matches_cost_comparison() {
        // (1) < (2) must be *exactly* inequality (3) — the paper derives one
        // from the other algebraically.
        for p in [16usize, 128, 1024, 4096, 32768] {
            for n in [1usize, 4, 8, 9, 16, 64, 256, 2048] {
                let lhs = padded_bruck_cost(p, n, &PARAMS) < two_phase_bruck_cost(p, n, &PARAMS);
                let rhs = padded_beats_two_phase(p, n, &PARAMS);
                assert_eq!(lhs, rhs, "p={p} n={n}");
            }
        }
    }

    #[test]
    fn padded_always_wins_below_8_bytes() {
        // §3.3: "this certainly happens when N is less than 8 bytes".
        for p in [2usize, 64, 1024, 32768] {
            for n in [0usize, 1, 4, 7] {
                assert!(padded_beats_two_phase(p, n, &PARAMS), "p={p} n={n}");
            }
        }
    }

    #[test]
    fn two_phase_wins_for_moderate_loads_spread_out_for_large() {
        // The qualitative Figure 9 shape: Bruck for small N, spread-out for
        // large N, with the crossover shrinking as P grows.
        assert_eq!(select_algorithm(1024, 64, &PARAMS), AlltoallvAlgorithm::TwoPhaseBruck);
        assert_eq!(select_algorithm(1024, 1 << 20, &PARAMS), AlltoallvAlgorithm::SpreadOut);
        let crossover_at = |p: usize| {
            (1..=24)
                .map(|e| 1usize << e)
                .find(|&n| select_algorithm(p, n, &PARAMS) == AlltoallvAlgorithm::SpreadOut)
                .unwrap()
        };
        assert!(crossover_at(32768) <= crossover_at(1024));
    }

    #[test]
    fn costs_are_monotone_in_n_and_p() {
        for p in [8usize, 256, 8192] {
            for n in [16usize, 128, 1024] {
                assert!(padded_bruck_cost(p, n, &PARAMS) < padded_bruck_cost(p, 2 * n, &PARAMS));
                assert!(
                    two_phase_bruck_cost(p, n, &PARAMS) < two_phase_bruck_cost(p * 2, n, &PARAMS)
                );
                assert!(spread_out_cost(p, n, &PARAMS) < spread_out_cost(p, 2 * n, &PARAMS));
            }
        }
    }

    #[test]
    fn single_rank_costs_nothing() {
        assert_eq!(padded_bruck_cost(1, 64, &PARAMS), 0.0);
        assert_eq!(two_phase_bruck_cost(1, 64, &PARAMS), 0.0);
        assert_eq!(spread_out_cost(1, 64, &PARAMS), 0.0);
    }
}
