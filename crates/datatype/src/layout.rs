//! The [`IndexedBlocks`] layout and its pack/unpack engine.

use std::fmt;

/// Errors from layout construction and pack/unpack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatatypeError {
    /// A block reaches past the end of the buffer it is applied to.
    OutOfBounds {
        /// End offset the layout requires (its extent).
        required: usize,
        /// Length of the buffer supplied.
        available: usize,
    },
    /// The packed-side buffer does not match the layout's packed length.
    PackedSizeMismatch {
        /// Packed bytes the layout describes.
        required: usize,
        /// Length of the packed buffer supplied.
        available: usize,
    },
    /// Mismatched constructor arguments (lengths vs displacements).
    BadArgument(&'static str),
}

impl fmt::Display for DatatypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatatypeError::OutOfBounds { required, available } => {
                write!(f, "layout extent {required} exceeds buffer of {available} bytes")
            }
            DatatypeError::PackedSizeMismatch { required, available } => {
                write!(f, "layout packs {required} bytes but packed buffer has {available}")
            }
            DatatypeError::BadArgument(what) => write!(f, "bad argument: {what}"),
        }
    }
}

impl std::error::Error for DatatypeError {}

/// An ordered sequence of `(displacement, length)` byte blocks over a buffer —
/// the equivalent of an `MPI_Type_create_struct` of `MPI_BYTE` blocks, or of
/// `MPI_Type_indexed` with byte granularity.
///
/// Blocks may appear in any order and zero-length blocks are allowed (the
/// Bruck variants create them when a data block is empty). Packing serializes
/// the blocks in sequence order into a contiguous buffer; unpacking is the
/// inverse scatter.
///
/// ```
/// use bruck_datatype::IndexedBlocks;
///
/// // Pick bytes 0..2 and 6..9 out of a 10-byte buffer.
/// let ty = IndexedBlocks::new(vec![(0, 2), (6, 3)]).unwrap();
/// let src: Vec<u8> = (0..10).collect();
/// let packed = ty.pack(&src).unwrap();
/// assert_eq!(packed, [0, 1, 6, 7, 8]);
///
/// let mut dst = [0u8; 10];
/// ty.unpack_from(&packed, &mut dst).unwrap();
/// assert_eq!(dst, [0, 1, 0, 0, 0, 0, 6, 7, 8, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedBlocks {
    blocks: Vec<(usize, usize)>,
    packed_len: usize,
    extent: usize,
}

impl IndexedBlocks {
    /// Build a layout from `(displacement, length)` block descriptors.
    pub fn new(blocks: Vec<(usize, usize)>) -> Result<Self, DatatypeError> {
        let mut packed_len = 0usize;
        let mut extent = 0usize;
        for &(displ, len) in &blocks {
            packed_len = packed_len
                .checked_add(len)
                .ok_or(DatatypeError::BadArgument("packed length overflows usize"))?;
            let end = displ
                .checked_add(len)
                .ok_or(DatatypeError::BadArgument("block end overflows usize"))?;
            extent = extent.max(end);
        }
        Ok(IndexedBlocks { blocks, packed_len, extent })
    }

    /// Build from parallel `lengths` / `displacements` arrays — the shape MPI
    /// programs already carry for `MPI_Alltoallv` (`counts` + `displs`).
    pub fn from_lengths_displs(lengths: &[usize], displs: &[usize]) -> Result<Self, DatatypeError> {
        if lengths.len() != displs.len() {
            return Err(DatatypeError::BadArgument("lengths and displs differ in length"));
        }
        Self::new(displs.iter().copied().zip(lengths.iter().copied()).collect())
    }

    /// A single contiguous block `[0, len)`.
    pub fn contiguous(len: usize) -> Self {
        IndexedBlocks { blocks: vec![(0, len)], packed_len: len, extent: len }
    }

    /// `count` blocks of `block_len` bytes separated by `stride` bytes — the
    /// equivalent of `MPI_Type_vector` at byte granularity.
    pub fn strided(count: usize, block_len: usize, stride: usize) -> Result<Self, DatatypeError> {
        if stride < block_len && count > 1 {
            return Err(DatatypeError::BadArgument("stride smaller than block length"));
        }
        Self::new((0..count).map(|i| (i * stride, block_len)).collect())
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block descriptors in sequence order.
    pub fn blocks(&self) -> &[(usize, usize)] {
        &self.blocks
    }

    /// Bytes produced by packing (sum of block lengths) — MPI's *size*.
    pub fn packed_len(&self) -> usize {
        self.packed_len
    }

    /// One-past-the-end of the furthest block — MPI's *extent* (lower bound 0).
    pub fn extent(&self) -> usize {
        self.extent
    }

    fn check_unpacked(&self, buf_len: usize) -> Result<(), DatatypeError> {
        if self.extent > buf_len {
            Err(DatatypeError::OutOfBounds { required: self.extent, available: buf_len })
        } else {
            Ok(())
        }
    }

    /// Gather the layout's blocks out of `src` into `dst` (which must be
    /// exactly [`IndexedBlocks::packed_len`] bytes). Returns bytes written.
    pub fn pack_into(&self, src: &[u8], dst: &mut [u8]) -> Result<usize, DatatypeError> {
        self.check_unpacked(src.len())?;
        if dst.len() != self.packed_len {
            return Err(DatatypeError::PackedSizeMismatch {
                required: self.packed_len,
                available: dst.len(),
            });
        }
        let mut at = 0;
        for &(displ, len) in &self.blocks {
            dst[at..at + len].copy_from_slice(&src[displ..displ + len]);
            at += len;
        }
        Ok(at)
    }

    /// Allocating convenience form of [`IndexedBlocks::pack_into`].
    pub fn pack(&self, src: &[u8]) -> Result<Vec<u8>, DatatypeError> {
        let mut out = vec![0u8; self.packed_len];
        self.pack_into(src, &mut out)?;
        Ok(out)
    }

    /// Scatter a packed buffer back out to the layout's blocks in `dst`.
    pub fn unpack_from(&self, packed: &[u8], dst: &mut [u8]) -> Result<(), DatatypeError> {
        self.check_unpacked(dst.len())?;
        if packed.len() != self.packed_len {
            return Err(DatatypeError::PackedSizeMismatch {
                required: self.packed_len,
                available: packed.len(),
            });
        }
        let mut at = 0;
        for &(displ, len) in &self.blocks {
            dst[displ..displ + len].copy_from_slice(&packed[at..at + len]);
            at += len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_roundtrip() {
        let ty = IndexedBlocks::contiguous(5);
        let src = [9u8, 8, 7, 6, 5];
        assert_eq!(ty.pack(&src).unwrap(), src);
        assert_eq!(ty.packed_len(), 5);
        assert_eq!(ty.extent(), 5);
    }

    #[test]
    fn out_of_order_blocks_pack_in_sequence_order() {
        let ty = IndexedBlocks::new(vec![(4, 2), (0, 2)]).unwrap();
        let src = [0u8, 1, 2, 3, 4, 5];
        assert_eq!(ty.pack(&src).unwrap(), [4, 5, 0, 1]);
    }

    #[test]
    fn zero_length_blocks_are_fine() {
        let ty = IndexedBlocks::new(vec![(3, 0), (1, 2), (9, 0)]).unwrap();
        assert_eq!(ty.packed_len(), 2);
        assert_eq!(ty.extent(), 9);
        let src = [0u8, 10, 20, 0, 0, 0, 0, 0, 0];
        assert_eq!(ty.pack(&src).unwrap(), [10, 20]);
    }

    #[test]
    fn strided_matches_manual_blocks() {
        let ty = IndexedBlocks::strided(3, 2, 4).unwrap();
        assert_eq!(ty.blocks(), &[(0, 2), (4, 2), (8, 2)]);
        assert!(IndexedBlocks::strided(2, 4, 2).is_err());
        // A single block may have stride < len (no second block to overlap).
        assert!(IndexedBlocks::strided(1, 4, 2).is_ok());
    }

    #[test]
    fn from_lengths_displs_mirrors_alltoallv_arrays() {
        let ty = IndexedBlocks::from_lengths_displs(&[2, 0, 3], &[0, 2, 2]).unwrap();
        assert_eq!(ty.blocks(), &[(0, 2), (2, 0), (2, 3)]);
        assert!(IndexedBlocks::from_lengths_displs(&[1], &[]).is_err());
    }

    #[test]
    fn bounds_errors() {
        let ty = IndexedBlocks::new(vec![(8, 4)]).unwrap();
        let small = [0u8; 10];
        assert_eq!(
            ty.pack(&small).unwrap_err(),
            DatatypeError::OutOfBounds { required: 12, available: 10 }
        );
        let mut dst = [0u8; 10];
        assert!(ty.unpack_from(&[0u8; 4], &mut dst).is_err());
        let big = [0u8; 12];
        let mut wrong = [0u8; 3];
        assert_eq!(
            ty.pack_into(&big, &mut wrong).unwrap_err(),
            DatatypeError::PackedSizeMismatch { required: 4, available: 3 }
        );
    }

    #[test]
    fn unpack_only_touches_described_bytes() {
        let ty = IndexedBlocks::new(vec![(1, 2)]).unwrap();
        let mut dst = [7u8; 4];
        ty.unpack_from(&[1, 2], &mut dst).unwrap();
        assert_eq!(dst, [7, 1, 2, 7]);
    }
}
