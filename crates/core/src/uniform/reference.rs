//! Pairwise oracle implementation used to validate every other variant.

use bruck_comm::{CommResult, Communicator};

use super::validate_uniform;
use crate::common::{add_mod, sub_mod, SPREAD_TAG};

/// Straightforward pairwise exchange: at offset round `i`, send to `p + i`
/// and receive from `p − i`. Structurally unlike the Bruck family (no
/// store-and-forward, no packing), which is what makes it a useful oracle.
pub fn reference_alltoall<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();

    recvbuf[me * block..(me + 1) * block].copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
    for i in 1..p {
        let dest = add_mod(me, i, p);
        let src = sub_mod(me, i, p);
        let n = comm.sendrecv_into(
            dest,
            SPREAD_TAG,
            &sendbuf[dest * block..(dest + 1) * block],
            src,
            SPREAD_TAG,
            &mut recvbuf[src * block..(src + 1) * block],
        )?;
        debug_assert_eq!(n, block);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallAlgorithm;

    #[test]
    fn reference_correct_for_all_sizes() {
        for p in TEST_SIZES {
            run_and_check(AlltoallAlgorithm::Reference, p, 3);
        }
    }
}
