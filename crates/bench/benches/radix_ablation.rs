//! Ablation: the radix knob on two-phase Bruck — real execution at thread
//! scale. Higher radix trades per-step latency for less forwarded data, so
//! the best radix shifts upward with block size. Std-only harness.

use std::time::{Duration, Instant};

use bruck_bench::harness::BenchGroup;
use bruck_comm::{Communicator, ThreadComm};
use bruck_core::{packed_displs, two_phase_bruck_radix};
use bruck_workload::{Distribution, SizeMatrix};

fn run_iters(m: &SizeMatrix, radix: usize, iters: u64) -> Duration {
    let p = m.p();
    let per_rank = ThreadComm::run(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf: Vec<u8> = (0..sendcounts.iter().sum()).map(|i| i as u8).collect();
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            two_phase_bruck_radix(
                comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls, radix,
            )
            .unwrap();
        }
        start.elapsed()
    });
    per_rank.into_iter().max().unwrap()
}

fn main() {
    let p = 32;
    for n in [32usize, 1024] {
        let m = SizeMatrix::generate(Distribution::Uniform, 7, p, n);
        let mut group = BenchGroup::new(format!("radix_two_phase_p{p}_n{n}"));
        group.sample_size(10);
        for radix in [2usize, 4, 8, 32] {
            group.bench_custom(&radix.to_string(), |iters| run_iters(&m, radix, iters));
        }
        group.finish();
    }
}
