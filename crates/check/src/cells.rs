//! Shared payload-cell helpers for the check harnesses.
//!
//! The chaos soak ([`crate::chaos`]), the deterministic-schedule matrix
//! ([`crate::sim_matrix`]), and the exhaustive explorer ([`crate::dpor`])
//! all drive the same closed-form payload convention: byte `idx` of the
//! block rank `src` sends to rank `dst` is [`pattern`]`(src, dst, idx)`.
//! This module is the one home for that convention plus the send-side fill,
//! the receive-side check, and the result digest, so the harnesses cannot
//! drift apart on what "byte-correct" means.

use bruck_core::packed_displs;
use bruck_workload::SizeMatrix;

/// Deterministic pattern byte for (source, destination, offset-in-block) —
/// the same convention as bruck-core's test utilities (which are test-only
/// and thus not linkable from here).
pub fn pattern(src: usize, dst: usize, idx: usize) -> u8 {
    (src.wrapping_mul(167) ^ dst.wrapping_mul(59) ^ idx.wrapping_mul(13)) as u8
}

/// SplitMix64 step for result digests.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build rank `me`'s pattern-filled send side:
/// `(sendcounts, sdispls, sendbuf)`.
pub fn pattern_send_side(m: &SizeMatrix, me: usize) -> (Vec<usize>, Vec<usize>, Vec<u8>) {
    let sendcounts = m.sendcounts(me);
    let sdispls = packed_displs(&sendcounts);
    let total: usize = sendcounts.iter().sum();
    let mut sendbuf = vec![0u8; total];
    for dst in 0..m.p() {
        for idx in 0..sendcounts[dst] {
            sendbuf[sdispls[dst] + idx] = pattern(me, dst, idx);
        }
    }
    (sendcounts, sdispls, sendbuf)
}

/// A byte that failed the pattern check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternMismatch {
    /// Offset inside the block.
    pub idx: usize,
    /// The byte found in the receive buffer.
    pub got: u8,
    /// The pattern byte that should be there.
    pub want: u8,
}

/// Check rank `me`'s received block from `src` against the pattern;
/// `rdispls` are `me`'s packed receive displacements. Returns the first
/// mismatch, letting each harness keep its own failure wording.
pub fn check_block(
    m: &SizeMatrix,
    me: usize,
    src: usize,
    rdispls: &[usize],
    recvbuf: &[u8],
) -> Option<PatternMismatch> {
    for idx in 0..m.get(src, me) {
        let got = recvbuf[rdispls[src] + idx];
        let want = pattern(src, me, idx);
        if got != want {
            return Some(PatternMismatch { idx, got, want });
        }
    }
    None
}

/// Fold rank `rank`'s receive buffer into an order-sensitive digest.
pub fn digest_rank_buf(mut digest: u64, rank: usize, buf: &[u8]) -> u64 {
    digest = mix(digest ^ rank as u64);
    for chunk in buf.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        digest = mix(digest ^ u64::from_le_bytes(b));
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_workload::Distribution;

    #[test]
    fn send_side_matches_block_check() {
        let m = SizeMatrix::generate(Distribution::Uniform, 7, 4, 16);
        // What rank 0 sends to rank 2 is exactly what the check expects
        // rank 2 to receive from rank 0.
        let (sendcounts, sdispls, sendbuf) = pattern_send_side(&m, 0);
        let rdispls = packed_displs(&m.recvcounts(2));
        let mut recvbuf = vec![0u8; m.recvcounts(2).iter().sum()];
        recvbuf[rdispls[0]..rdispls[0] + sendcounts[2]]
            .copy_from_slice(&sendbuf[sdispls[2]..sdispls[2] + sendcounts[2]]);
        assert_eq!(check_block(&m, 2, 0, &rdispls, &recvbuf), None);
        // Flip one byte and the check names it.
        recvbuf[rdispls[0]] ^= 0xFF;
        let mm = check_block(&m, 2, 0, &rdispls, &recvbuf).expect("mismatch found");
        assert_eq!(mm.idx, 0);
        assert_eq!(mm.want, pattern(0, 2, 0));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = digest_rank_buf(digest_rank_buf(1, 0, b"aa"), 1, b"bb");
        let b = digest_rank_buf(digest_rank_buf(1, 0, b"bb"), 1, b"aa");
        assert_ne!(a, b);
    }
}
