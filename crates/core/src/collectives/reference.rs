//! Naive local references for the collective family.
//!
//! These compute the *defined result* of each collective directly from
//! every rank's input — no communication, no schedule — and are the oracle
//! every wire schedule is differentially tested against. Keeping them pure
//! functions makes the gauntlet's comparison trivially trustworthy: there
//! is no shared code path with the schedules under test.

use bruck_comm::ReduceOp;

/// Deterministic byte for (rank, offset) test payloads — the collective
/// family's analogue of the alltoallv pattern convention. Shared by the
/// unit tests, the differential gauntlet, and the chaos cells so every
/// layer checks the same bytes.
pub fn pattern_byte(rank: usize, idx: usize) -> u8 {
    (rank.wrapping_mul(167) ^ idx.wrapping_mul(13) ^ 0x5A) as u8
}

/// Deterministic element for (rank, offset) reduce-family payloads.
pub fn pattern_u64(rank: usize, idx: usize) -> u64 {
    let x = (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (idx as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 29)
}

/// The defined allgatherv result: the concatenation of every rank's
/// contribution in rank order (packed layout).
pub fn reference_allgatherv(inputs: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(inputs.iter().map(Vec::len).sum());
    for block in inputs {
        out.extend_from_slice(block);
    }
    out
}

/// The defined reduce_scatter result: element-wise reduce all input vectors
/// in rank order, then split into per-rank segments of `counts` elements.
///
/// # Panics
/// If input lengths disagree with `Σ counts` — test-harness misuse, not a
/// runtime condition.
pub fn reference_reduce_scatter(
    inputs: &[Vec<u64>],
    counts: &[usize],
    op: ReduceOp,
) -> Vec<Vec<u64>> {
    let reduced = reference_allreduce(inputs, op);
    assert_eq!(reduced.len(), counts.iter().sum::<usize>(), "counts must partition the vector");
    let mut out = Vec::with_capacity(counts.len());
    let mut at = 0;
    for &c in counts {
        out.push(reduced[at..at + c].to_vec());
        at += c;
    }
    out
}

/// The defined allreduce result: the sequential element-wise fold of every
/// rank's vector, in rank order.
///
/// # Panics
/// If the input vectors differ in length — test-harness misuse.
pub fn reference_allreduce(inputs: &[Vec<u64>], op: ReduceOp) -> Vec<u64> {
    let Some(first) = inputs.first() else {
        return Vec::new();
    };
    let mut acc = first.clone();
    for v in &inputs[1..] {
        op.apply_slice(&mut acc, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgatherv_reference_concatenates() {
        let inputs = vec![vec![1u8, 2], vec![], vec![3]];
        assert_eq!(reference_allgatherv(&inputs), vec![1, 2, 3]);
    }

    #[test]
    fn reduce_scatter_reference_partitions_the_fold() {
        let inputs = vec![vec![1u64, 2, 3], vec![10, 20, 30]];
        let segs = reference_reduce_scatter(&inputs, &[2, 1], ReduceOp::Sum);
        assert_eq!(segs, vec![vec![11, 22], vec![33]]);
    }

    #[test]
    fn allreduce_reference_folds_in_rank_order() {
        let inputs = vec![vec![5u64, 1], vec![2, 9], vec![7, 3]];
        assert_eq!(reference_allreduce(&inputs, ReduceOp::Max), vec![7, 9]);
        assert_eq!(reference_allreduce(&inputs, ReduceOp::Min), vec![2, 1]);
        assert_eq!(reference_allreduce(&inputs, ReduceOp::Sum), vec![14, 13]);
        assert_eq!(reference_allreduce(&[], ReduceOp::Sum), Vec::<u64>::new());
    }
}
