//! `bruck-lint`: a std-only source scanner for repo-banned patterns.
//!
//! This is deliberately a *line* linter, not a parser: every rule here is a
//! textual invariant chosen so that false positives are rare and every true
//! positive is worth a human decision. Violations that are audited and
//! intentional live in `crates/check/lint-allow.txt` — an explicit,
//! counted budget per `(rule, file)`, so a *new* violation in an allowlisted
//! file still fails the gate.
//!
//! ## Rules
//!
//! * `no-direct-mailbox` — code outside `crates/comm` mentioning mailboxes:
//!   algorithms must go through the [`Communicator`] trait, never the
//!   runtime's delivery structures.
//! * `no-unwrap` / `no-expect` — `.unwrap()` / `.expect(` in non-test library
//!   code: library errors must propagate as `CommResult`.
//! * `no-relaxed-ordering` — any `Ordering::Relaxed`: relaxed atomics on
//!   flags that gate memory publication are unsound, so every relaxed use
//!   must be audited into the allowlist.
//! * `no-relaxed-rmw` — a `.load(Ordering::Relaxed)` followed shortly by a
//!   `.store(` on the same receiver: a non-atomic read-modify-write (the
//!   exact lost-update bug once present in `ChaosComm::jitter`); use
//!   `fetch_update`/`fetch_add` instead.
//! * `no-unsafe` — the `unsafe` keyword anywhere: the workspace is safe Rust
//!   except the audited block(s) listed in the allowlist and DESIGN.md.
//! * `no-adhoc-instant` — `Instant::now()` in `crates/core` outside
//!   `probe.rs`: algorithm phase timing must go through the `probe::span`
//!   layer (so it vanishes when probing is disabled and lands in the trace
//!   exporter), never through ad-hoc stopwatches scattered in algorithms.
//! * `no-adhoc-sleep` — `thread::sleep(` in `crates/core` or `crates/comm`
//!   outside `crates/comm/src/clock.rs`: waiting must go through
//!   `Communicator::sleep` (backed by the clock layer), so the deterministic
//!   simulator can replace it with virtual time. An ad-hoc real sleep is
//!   invisible to `SimComm` and reintroduces wall-clock flakiness.
//! * `no-adhoc-spawn` — thread spawning (`spawn(` / `spawn_scoped(`) in
//!   `crates/comm` outside `runtime.rs` and `mailbox.rs`: since the
//!   event-driven runtime landed, concurrency in the comm layer is a
//!   scheduling concern. New OS threads hide work from the worker-pool
//!   accounting (a spawned thread can block on a mailbox the event runtime
//!   thinks is quiescent), so every spawn site outside the runtime must be
//!   audited into the allowlist — currently the legacy rank-per-thread
//!   backends (`thread_comm.rs`, `sim.rs`) only.
//! * `no-hash-iteration` — the `HashMap` / `HashSet` types in `crates/core`
//!   or `crates/comm` non-test code: their iteration order is unspecified
//!   (and randomized across processes), which silently breaks the
//!   bit-reproducibility the deterministic simulator, the schedule fuzzer,
//!   and the DPOR model checker all stand on. Use `BTreeMap` / `BTreeSet`;
//!   ordered iteration is never the bottleneck at these sizes.
//! * `no-discarded-comm-error` — `let _ =` on a communication call (a
//!   `.send_buf(` / `.recv_buf(` / `.quiesce(` / collective call, etc.) in
//!   `crates/core` or `crates/comm` non-test code: since the self-healing
//!   membership layer landed, a swallowed `CommError` can hide the exact
//!   failure evidence the detector/agreement cycle exists to act on. Every
//!   deliberate best-effort discard (e.g. the post-exchange ARQ drain) must
//!   be audited into the allowlist; everything else handles or propagates.
//! * `no-direct-variant-call` — a call to one of the nine legacy
//!   non-uniform variant functions (`two_phase_bruck(`, `sloav_alltoallv(`,
//!   …) in non-test code outside `crates/core/src/nonuniform/engine.rs`:
//!   since the configurable engine landed, the variants are *named config
//!   points* of one parameter space, and every production call must route
//!   through the engine (`alltoallv` / `configurable_alltoallv`) so config
//!   snapping, validation, and the tuner's key accounting stay in one
//!   place. Definitions (`fn two_phase_bruck`) are not calls and are
//!   exempt; migration stragglers get a counted allowlist budget.
//! * `no-adhoc-condvar` — the `Condvar` type in `crates/comm` outside
//!   `runtime.rs` and `mailbox.rs`: blocking/wakeup must go through the
//!   readiness abstraction (`MatchStore` + waiter lists / the `Mailbox`
//!   wrapper), not ad-hoc condition variables — a raw `Condvar` wait parks a
//!   whole OS thread, which is exactly what the event runtime exists to
//!   avoid, and it is invisible to the deadlock prover.
//!
//! Test code (`#[cfg(test)]` regions, tracked by brace depth) is exempt from
//! the unwrap/expect/relaxed rules; `unsafe` is flagged even in tests.
//!
//! [`Communicator`]: bruck_comm::Communicator

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Rule id (e.g. `no-unwrap`).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}:{}: {}", self.rule, self.path, self.line, self.snippet)
    }
}

/// The outcome of a lint run after applying the allowlist.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings in `(rule, file)` groups that exceeded their budget. These
    /// fail the gate.
    pub violations: Vec<LintFinding>,
    /// Findings absorbed by allowlist budgets.
    pub suppressed: usize,
    /// Allowlist lines whose budget exceeds the actual count (candidates for
    /// tightening) or whose syntax was bad.
    pub warnings: Vec<String>,
}

impl LintReport {
    /// Zero unallowlisted findings?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The workspace root, derived from this crate's manifest directory so the
/// binaries work from any working directory.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Run every rule over the workspace sources under `root` and apply the
/// allowlist at `crates/check/lint-allow.txt`.
pub fn run_lint(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(file)?;
        scan_file(&rel, &text, &mut findings);
    }

    let allow = load_allowlist(&root.join("crates").join("check").join("lint-allow.txt"));
    Ok(apply_allowlist(findings, allow))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Blank out string-literal contents and strip `//` comments, preserving
/// column positions of the surviving code. This is what makes the linter
/// robust to rule patterns appearing in messages, docs, and its own source.
fn sanitize(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if c == b'\\' && i + 1 < bytes.len() {
                out.extend([b' ', b' ']);
                i += 2;
                continue;
            }
            if c == b'"' {
                in_str = false;
                out.push(b'"');
            } else {
                out.push(b' ');
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => {
                in_str = true;
                out.push(b'"');
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break, // comment
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes; a lifetime has no closing quote.
                if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    out.extend(std::iter::repeat(b' ').take(j.saturating_sub(i) + 1));
                    i = j + 1;
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    out.extend([b' ', b' ', b' ']);
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn brace_delta(sanitized: &str) -> i64 {
    let mut d = 0;
    for b in sanitized.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// The `X` in `X.load(...)`: the longest trailing receiver expression made of
/// identifier characters and dots (e.g. `self.state`).
fn receiver_before(sanitized: &str, call_pos: usize) -> &str {
    let head = &sanitized[..call_pos];
    let start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .map_or(0, |i| i + 1);
    &head[start..]
}

fn scan_file(rel: &str, text: &str, out: &mut Vec<LintFinding>) {
    let in_comm = rel.starts_with("crates/comm/");
    // The probe module is the one sanctioned stopwatch site in bruck-core.
    let instant_banned =
        rel.starts_with("crates/core/") && rel != "crates/core/src/probe.rs";
    // The clock module is the one sanctioned real-sleep site: everything
    // else goes through `Communicator::sleep`, which the simulator overrides
    // with virtual time.
    let sleep_banned = (rel.starts_with("crates/core/") || rel.starts_with("crates/comm/"))
        && rel != "crates/comm/src/clock.rs";
    // The scheduler and the blocking-mailbox wrapper are the two sanctioned
    // concurrency-primitive sites in the comm layer; everywhere else must go
    // through the readiness abstraction.
    let concurrency_site =
        rel == "crates/comm/src/runtime.rs" || rel == "crates/comm/src/mailbox.rs";
    let spawn_banned = rel.starts_with("crates/comm/") && !concurrency_site;
    let condvar_banned = rel.starts_with("crates/comm/") && !concurrency_site;
    // Determinism-critical crates must not iterate hashed collections.
    let hash_banned = rel.starts_with("crates/core/") || rel.starts_with("crates/comm/");
    // The engine's dispatch table is the one sanctioned alltoallv
    // variant-call site, and the collectives dispatch module the one for the
    // collective family; everything else routes through them.
    let variant_call_banned = rel.starts_with("crates/")
        && rel != "crates/core/src/nonuniform/engine.rs"
        && rel != "crates/core/src/collectives/mod.rs";
    // Whole-file test modules (`#[cfg(test)] mod foo_tests;` in the crate
    // root) carry the cfg on the *declaration*, invisible from the file
    // itself; go by the naming convention.
    let test_file = rel.ends_with("_tests.rs") || rel.ends_with("/tests.rs");
    let lines: Vec<&str> = text.lines().collect();
    let sanitized: Vec<String> = lines.iter().map(|l| sanitize(l)).collect();

    // Track #[cfg(test)] { ... } regions by brace depth.
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    let mut awaiting_test_item = false;

    for (idx, (raw, san)) in lines.iter().zip(&sanitized).enumerate() {
        let lineno = idx + 1;
        let trimmed = raw.trim();
        if trimmed.starts_with("//") {
            continue;
        }
        let mut test_code = in_test || test_file;
        if !in_test {
            if san.contains("#[cfg(test)]") {
                awaiting_test_item = true;
                test_code = true;
            }
            if awaiting_test_item && san.contains('{') {
                awaiting_test_item = false;
                in_test = true;
                test_depth = brace_delta(san);
                test_code = true;
                if test_depth <= 0 {
                    in_test = false;
                }
            }
        } else {
            test_depth += brace_delta(san);
            if test_depth <= 0 {
                in_test = false;
            }
        }

        let mut push = |rule: &'static str| {
            out.push(LintFinding {
                rule,
                path: rel.to_string(),
                line: lineno,
                snippet: trimmed.to_string(),
            });
        };

        // unsafe: everywhere, token-bounded so `unsafe_code` doesn't match.
        for (pos, _) in san.match_indices("unsafe") {
            let after = san[pos + "unsafe".len()..].chars().next();
            let before = san[..pos].chars().next_back();
            let boundary = |c: Option<char>| {
                c.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'))
            };
            if boundary(after) && boundary(before) {
                push("no-unsafe");
            }
        }

        if !in_comm && san.to_ascii_lowercase().contains("mailbox") && !test_code {
            push("no-direct-mailbox");
        }

        if !test_code {
            if instant_banned {
                for _ in san.match_indices("Instant::now(") {
                    push("no-adhoc-instant");
                }
            }
            if sleep_banned {
                for _ in san.match_indices("thread::sleep(") {
                    push("no-adhoc-sleep");
                }
            }
            if spawn_banned {
                for _ in san.match_indices("spawn(") {
                    push("no-adhoc-spawn");
                }
                for _ in san.match_indices("spawn_scoped(") {
                    push("no-adhoc-spawn");
                }
            }
            if condvar_banned {
                for _ in san.match_indices("Condvar") {
                    push("no-adhoc-condvar");
                }
            }
            if hash_banned {
                for _ in san.match_indices("HashMap") {
                    push("no-hash-iteration");
                }
                for _ in san.match_indices("HashSet") {
                    push("no-hash-iteration");
                }
            }
            if hash_banned && san.trim_start().starts_with("let _ =") {
                // Same core/comm scope as the determinism rules: a
                // discarded Result from a communication call swallows the
                // failure evidence the recovery stack runs on.
                const COMM_CALLS: [&str; 11] = [
                    ".send_buf(",
                    ".recv_buf(",
                    ".recv_into(",
                    ".recv_buf_timeout(",
                    ".send_reliable(",
                    ".quiesce(",
                    ".barrier(",
                    ".allreduce_u64(",
                    ".allgather_u64(",
                    ".bcast_bytes(",
                    ".alltoall_counts(",
                ];
                if COMM_CALLS.iter().any(|c| san.contains(c)) {
                    push("no-discarded-comm-error");
                }
            }
            if variant_call_banned {
                // The nine legacy alltoallv variant entry points plus the
                // eight collective-family schedules, matched as *calls*:
                // name immediately followed by `(`, preceded by a
                // non-identifier character, and not a definition (generic
                // definitions `fn name<C: ...>(` never match `name(`, but
                // monomorphic helpers could, so `fn ` is checked too).
                const VARIANT_CALLS: [&str; 17] = [
                    "reference_alltoallv(",
                    "spread_out_alltoallv(",
                    "vendor_alltoallv(",
                    "padded_bruck(",
                    "padded_alltoall(",
                    "two_phase_bruck(",
                    "sloav_alltoallv(",
                    "hierarchical_alltoallv(",
                    "ranka_two_stage_alltoallv(",
                    "allgatherv_ring(",
                    "allgatherv_bruck(",
                    "pat_allgatherv(",
                    "reduce_scatter_pairwise(",
                    "reduce_scatter_halving(",
                    "pat_reduce_scatter(",
                    "allreduce_doubling(",
                    "allreduce_rs_ag(",
                ];
                for call in VARIANT_CALLS {
                    for (pos, _) in san.match_indices(call) {
                        let before = san[..pos].chars().next_back();
                        let ident_before =
                            before.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
                        let is_def = san[..pos].trim_end().ends_with("fn");
                        if !ident_before && !is_def {
                            push("no-direct-variant-call");
                        }
                    }
                }
            }
            for _ in san.match_indices(".unwrap()") {
                push("no-unwrap");
            }
            for _ in san.match_indices(".expect(") {
                push("no-expect");
            }
            for _ in san.match_indices("Ordering::Relaxed") {
                push("no-relaxed-ordering");
            }
            // Non-atomic RMW: `recv.load(Ordering::Relaxed)` with a
            // `recv.store(` within the next few lines.
            if let Some(pos) = san.find(".load(Ordering::Relaxed)") {
                let recv = receiver_before(san, pos).to_string();
                if !recv.is_empty() {
                    let store_pat = format!("{recv}.store(");
                    let window_end = (idx + 8).min(sanitized.len());
                    if sanitized[idx..window_end].iter().any(|l| l.contains(&store_pat)) {
                        push("no-relaxed-rmw");
                    }
                }
            }
        }
    }
}

fn load_allowlist(path: &Path) -> BTreeMap<(String, String), usize> {
    let mut allow = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else { return allow };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next()) {
            if let Ok(n) = count.parse::<usize>() {
                allow.insert((rule.to_string(), file.to_string()), n);
            }
        }
    }
    allow
}

fn apply_allowlist(
    findings: Vec<LintFinding>,
    allow: BTreeMap<(String, String), usize>,
) -> LintReport {
    let mut by_group: BTreeMap<(String, String), Vec<LintFinding>> = BTreeMap::new();
    for f in findings {
        by_group.entry((f.rule.to_string(), f.path.clone())).or_default().push(f);
    }
    let mut report = LintReport::default();
    for (key, group) in &by_group {
        let budget = allow.get(key).copied().unwrap_or(0);
        if group.len() > budget {
            report.violations.extend(group.iter().cloned());
            if budget > 0 {
                report.warnings.push(format!(
                    "{} {}: {} findings exceed allowlisted budget of {budget}",
                    key.0,
                    key.1,
                    group.len()
                ));
            }
        } else {
            report.suppressed += group.len();
            if group.len() < budget {
                report.warnings.push(format!(
                    "stale allowlist entry: {} {} budgets {budget} but only {} found",
                    key.0,
                    key.1,
                    group.len()
                ));
            }
        }
    }
    for ((rule, file), budget) in &allow {
        if !by_group.contains_key(&(rule.clone(), file.clone())) && *budget > 0 {
            report.warnings.push(format!(
                "stale allowlist entry: {rule} {file} budgets {budget} but nothing found"
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(rel: &str, text: &str) -> Vec<LintFinding> {
        let mut out = Vec::new();
        scan_file(rel, text, &mut out);
        out
    }

    #[test]
    fn detects_unwrap_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\nfn h() { z.unwrap(); }\n";
        let hits = scan_str("crates/core/src/a.rs", src);
        let unwraps: Vec<_> = hits.iter().filter(|f| f.rule == "no-unwrap").collect();
        assert_eq!(unwraps.len(), 2, "{hits:?}");
        assert_eq!(unwraps[0].line, 1);
        assert_eq!(unwraps[1].line, 6);
    }

    #[test]
    fn detects_relaxed_rmw_pair() {
        let src = "fn f(&self) {\n    let s = self.state.load(Ordering::Relaxed);\n    let s2 = mix(s);\n    self.state.store(s2, Ordering::Relaxed);\n}\n";
        let hits = scan_str("crates/comm/src/a.rs", src);
        assert!(hits.iter().any(|f| f.rule == "no-relaxed-rmw" && f.line == 2), "{hits:?}");
        // The two bare Relaxed uses are also individually flagged.
        assert_eq!(hits.iter().filter(|f| f.rule == "no-relaxed-ordering").count(), 2);
    }

    #[test]
    fn load_without_store_is_not_rmw() {
        let src = "fn f(&self) { let s = self.state.load(Ordering::Relaxed); use_it(s); }\n";
        let hits = scan_str("crates/comm/src/a.rs", src);
        assert!(!hits.iter().any(|f| f.rule == "no-relaxed-rmw"), "{hits:?}");
    }

    #[test]
    fn mailbox_flagged_outside_comm_only() {
        let src = "fn f(w: &World) { let m = &w.mailboxes[0]; }\n";
        assert!(scan_str("crates/core/src/a.rs", src).iter().any(|f| f.rule == "no-direct-mailbox"));
        assert!(scan_str("crates/comm/src/a.rs", src)
            .iter()
            .all(|f| f.rule != "no-direct-mailbox"));
    }

    #[test]
    fn strings_comments_and_attributes_do_not_match() {
        let src = "#![forbid(unsafe_code)]\nfn f() { log(\".unwrap() in a string\"); } // .unwrap() in a comment\n";
        let hits = scan_str("crates/core/src/a.rs", src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unsafe_keyword_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn g() { let p = unsafe { danger() }; }\n}\n";
        let hits = scan_str("crates/core/src/a.rs", src);
        assert!(hits.iter().any(|f| f.rule == "no-unsafe" && f.line == 3), "{hits:?}");
    }

    #[test]
    fn adhoc_instant_flagged_in_core_outside_probe() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(scan_str("crates/core/src/uniform/basic.rs", src)
            .iter()
            .any(|f| f.rule == "no-adhoc-instant"));
        // The probe module is the sanctioned stopwatch site...
        assert!(scan_str("crates/core/src/probe.rs", src)
            .iter()
            .all(|f| f.rule != "no-adhoc-instant"));
        // ...and the rule only governs bruck-core.
        assert!(scan_str("crates/bench/src/lib.rs", src)
            .iter()
            .all(|f| f.rule != "no-adhoc-instant"));
        // Test code inside core may still use raw stopwatches.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn g() { let t = Instant::now(); }\n}\n";
        assert!(scan_str("crates/core/src/uniform/basic.rs", test_src)
            .iter()
            .all(|f| f.rule != "no-adhoc-instant"));
    }

    #[test]
    fn adhoc_sleep_flagged_in_core_and_comm_outside_clock() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        assert!(scan_str("crates/core/src/nonuniform/spread_out.rs", src)
            .iter()
            .any(|f| f.rule == "no-adhoc-sleep"));
        assert!(scan_str("crates/comm/src/reliable.rs", src)
            .iter()
            .any(|f| f.rule == "no-adhoc-sleep"));
        // The clock module is the sanctioned real-sleep site...
        assert!(scan_str("crates/comm/src/clock.rs", src)
            .iter()
            .all(|f| f.rule != "no-adhoc-sleep"));
        // ...and the rule does not govern crates outside core/comm.
        assert!(scan_str("crates/bench/src/lib.rs", src)
            .iter()
            .all(|f| f.rule != "no-adhoc-sleep"));
        // Test code may still block a real thread (e.g. racing a mailbox).
        let test_src = "#[cfg(test)]\nmod tests {\n    fn g() { std::thread::sleep(d); }\n}\n";
        assert!(scan_str("crates/comm/src/mailbox.rs", test_src)
            .iter()
            .all(|f| f.rule != "no-adhoc-sleep"));
        // The bare `thread::sleep(` spelling is caught too.
        let bare = "use std::thread;\nfn f() { thread::sleep(d); }\n";
        assert!(scan_str("crates/comm/src/fault.rs", bare)
            .iter()
            .any(|f| f.rule == "no-adhoc-sleep"));
    }

    #[test]
    fn adhoc_spawn_flagged_in_comm_outside_runtime_and_mailbox() {
        let plain = "fn f() { std::thread::spawn(|| work()); }\n";
        let scoped = "fn f(s: &Scope) { b.spawn_scoped(s, || work()); }\n";
        for src in [plain, scoped] {
            assert!(scan_str("crates/comm/src/sim.rs", src)
                .iter()
                .any(|f| f.rule == "no-adhoc-spawn"));
            // The scheduler and the blocking wrapper are the sanctioned sites.
            assert!(scan_str("crates/comm/src/runtime.rs", src)
                .iter()
                .all(|f| f.rule != "no-adhoc-spawn"));
            assert!(scan_str("crates/comm/src/mailbox.rs", src)
                .iter()
                .all(|f| f.rule != "no-adhoc-spawn"));
            // The rule governs the comm layer only.
            assert!(scan_str("crates/bench/src/lib.rs", src)
                .iter()
                .all(|f| f.rule != "no-adhoc-spawn"));
        }
        // Test code may still spawn racing helper threads.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}\n";
        assert!(scan_str("crates/comm/src/chaos.rs", test_src)
            .iter()
            .all(|f| f.rule != "no-adhoc-spawn"));
    }

    #[test]
    fn adhoc_condvar_flagged_in_comm_outside_runtime_and_mailbox() {
        let src = "use std::sync::Condvar;\nstruct S { cv: Condvar }\n";
        let hits = scan_str("crates/comm/src/sim.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == "no-adhoc-condvar").count(), 2, "{hits:?}");
        assert!(scan_str("crates/comm/src/runtime.rs", src)
            .iter()
            .all(|f| f.rule != "no-adhoc-condvar"));
        assert!(scan_str("crates/comm/src/mailbox.rs", src)
            .iter()
            .all(|f| f.rule != "no-adhoc-condvar"));
        assert!(scan_str("crates/check/src/lint.rs", src)
            .iter()
            .all(|f| f.rule != "no-adhoc-condvar"));
    }

    #[test]
    fn hash_collections_flagged_in_core_and_comm_outside_tests() {
        let src = "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
        let hits = scan_str("crates/comm/src/reliable.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == "no-hash-iteration").count(), 3, "{hits:?}");
        assert!(scan_str("crates/core/src/radix.rs", src)
            .iter()
            .any(|f| f.rule == "no-hash-iteration"));
        // The rule governs the determinism-critical crates only.
        assert!(scan_str("crates/check/src/model.rs", src)
            .iter()
            .all(|f| f.rule != "no-hash-iteration"));
        // Test code may hash (e.g. counting distinct schedule weights).
        let test_src = "#[cfg(test)]\nmod tests {\n    fn g() { let s = HashSet::new(); }\n}\n";
        assert!(scan_str("crates/core/src/radix.rs", test_src)
            .iter()
            .all(|f| f.rule != "no-hash-iteration"));
    }

    #[test]
    fn discarded_comm_error_flagged_in_core_and_comm_outside_tests() {
        let src = "fn f(c: &C) {\n    let _ = c.send_buf(1, 7, buf);\n}\n";
        assert!(scan_str("crates/comm/src/fault.rs", src)
            .iter()
            .any(|f| f.rule == "no-discarded-comm-error"));
        assert!(scan_str("crates/core/src/nonuniform/resilient.rs", src)
            .iter()
            .any(|f| f.rule == "no-discarded-comm-error"));
        // Collectives and the ARQ drain are covered too.
        let drain = "fn f(rc: &R) {\n    let _ = rc.quiesce(a, b);\n}\n";
        assert!(scan_str("crates/core/src/nonuniform/resilient.rs", drain)
            .iter()
            .any(|f| f.rule == "no-discarded-comm-error"));
        // Binding the result (even unused) is not a discard...
        let bound = "fn f(c: &C) {\n    let _sent = c.send_buf(1, 7, buf);\n}\n";
        assert!(scan_str("crates/comm/src/fault.rs", bound)
            .iter()
            .all(|f| f.rule != "no-discarded-comm-error"));
        // ...discarding a non-comm call is fine...
        let other = "fn f() {\n    let _ = vec.pop();\n}\n";
        assert!(scan_str("crates/comm/src/fault.rs", other)
            .iter()
            .all(|f| f.rule != "no-discarded-comm-error"));
        // ...the rule governs the core/comm crates only...
        assert!(scan_str("crates/check/src/chaos.rs", src)
            .iter()
            .all(|f| f.rule != "no-discarded-comm-error"));
        // ...and test code may drain best-effort.
        let test_src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn g(c: &C) {\n",
            "        let _ = c.recv_buf(0, 1);\n",
            "    }\n",
            "}\n",
        );
        assert!(scan_str("crates/comm/src/fault.rs", test_src)
            .iter()
            .all(|f| f.rule != "no-discarded-comm-error"));
    }

    #[test]
    fn direct_variant_call_flagged_outside_engine() {
        let call = "fn f(c: &C) { two_phase_bruck(c, s, sc, sd, r, rc, rd) }\n";
        assert!(scan_str("crates/core/src/nonuniform/mod.rs", call)
            .iter()
            .any(|f| f.rule == "no-direct-variant-call"));
        assert!(scan_str("crates/bench/src/bin/figures.rs", call)
            .iter()
            .any(|f| f.rule == "no-direct-variant-call"));
        // The engine's dispatch table is the sanctioned call site.
        assert!(scan_str("crates/core/src/nonuniform/engine.rs", call)
            .iter()
            .all(|f| f.rule != "no-direct-variant-call"));
        // Definitions are not calls...
        let def = "pub fn two_phase_bruck(c: &C) -> CommResult<()> {\n";
        assert!(scan_str("crates/core/src/nonuniform/two_phase.rs", def)
            .iter()
            .all(|f| f.rule != "no-direct-variant-call"));
        // ...nor are prefixed identifiers or mentions in comments/strings.
        let prefixed = "fn f() { timed_two_phase_bruck(c) } // two_phase_bruck( in a comment\n";
        assert!(scan_str("crates/core/src/nonuniform/timed.rs", prefixed)
            .iter()
            .all(|f| f.rule != "no-direct-variant-call"));
        // Test code may call variants directly (differential baselines).
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn g(c: &C) { sloav_alltoallv(c) }\n}\n";
        assert!(scan_str("crates/core/src/nonuniform/sloav.rs", test_src)
            .iter()
            .all(|f| f.rule != "no-direct-variant-call"));
    }

    #[test]
    fn direct_collective_schedule_call_flagged_outside_dispatch() {
        let calls = [
            "fn f(c: &C) { allgatherv_ring(c, s, r, cn, d) }\n",
            "fn f(c: &C) { pat::pat_reduce_scatter(c, s, r, cn, op) }\n",
            "fn f(c: &C) { allreduce_rs_ag(c, b, op) }\n",
        ];
        for call in calls {
            assert!(
                scan_str("crates/core/src/collectives/pat.rs", call)
                    .iter()
                    .any(|f| f.rule == "no-direct-variant-call"),
                "{call}"
            );
            assert!(
                scan_str("crates/bench/src/bin/figures.rs", call)
                    .iter()
                    .any(|f| f.rule == "no-direct-variant-call"),
                "{call}"
            );
            // The collectives dispatch module is the sanctioned call site.
            assert!(
                scan_str("crates/core/src/collectives/mod.rs", call)
                    .iter()
                    .all(|f| f.rule != "no-direct-variant-call"),
                "{call}"
            );
        }
        // Generic definitions never match the call pattern.
        let def = "pub(super) fn allgatherv_ring<C: Communicator + ?Sized>(\n";
        assert!(scan_str("crates/core/src/collectives/allgatherv.rs", def)
            .iter()
            .all(|f| f.rule != "no-direct-variant-call"));
        // The dispatch wrappers themselves (`allgatherv(`, `reduce_scatter(`,
        // `allreduce(`) are not variant calls.
        let dispatch = "fn f(c: &C) { allgatherv(algo, c, s, r, cn, d) }\n";
        assert!(scan_str("crates/check/src/matrix.rs", dispatch)
            .iter()
            .all(|f| f.rule != "no-direct-variant-call"));
    }

    #[test]
    fn allowlist_budget_suppresses_exact_count() {
        let f = |n: usize| LintFinding {
            rule: "no-expect",
            path: "crates/x/src/a.rs".into(),
            line: n,
            snippet: String::new(),
        };
        let mut allow = BTreeMap::new();
        allow.insert(("no-expect".to_string(), "crates/x/src/a.rs".to_string()), 2);
        let report = apply_allowlist(vec![f(1), f(2)], allow.clone());
        assert!(report.is_clean());
        assert_eq!(report.suppressed, 2);
        let report = apply_allowlist(vec![f(1), f(2), f(3)], allow);
        assert!(!report.is_clean());
        assert_eq!(report.violations.len(), 3);
    }

    #[test]
    fn workspace_lint_gate_is_clean() {
        // The same invocation `scripts/verify.sh` gates on: the tree plus the
        // audited allowlist must produce zero unallowlisted findings.
        let report = run_lint(&repo_root()).expect("lint walks the workspace");
        assert!(
            report.is_clean(),
            "unallowlisted lint findings:\n{}",
            report
                .violations
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
