//! Instrumented variants of the non-uniform algorithms: wall-clock per
//! phase, for quantifying each §6.1 design decision (metadata scheme, buffer
//! management, rotation/scan elimination) — the two-phase-vs-SLOAV ablation.

use std::time::Duration;

use bruck_comm::{CommError, CommResult, Communicator, MsgBuf, ReduceOp};

use super::validate_v;
use crate::common::{add_mod, ceil_log2, data_tag, meta_tag, rotation_index, step_rel_indices, sub_mod};
use crate::probe::Stopwatch;

/// Per-phase wall-clock breakdown of a non-uniform exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NonuniformPhases {
    /// The allreduce finding the global maximum block size `N`.
    pub allreduce: Duration,
    /// Metadata transmission (all log P rounds).
    pub meta_comm: Duration,
    /// Data transmission (all log P rounds).
    pub data_comm: Duration,
    /// Local packing/unpacking/staging copies.
    pub local_copy: Duration,
    /// Final rotation/scan (zero for two-phase Bruck — the point).
    pub scan: Duration,
}

impl NonuniformPhases {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.allreduce + self.meta_comm + self.data_comm + self.local_copy + self.scan
    }
}

/// [`super::two_phase_bruck`] with per-phase timing. Identical wire
/// behaviour (same tags, sizes, schedule).
#[allow(clippy::too_many_arguments)]
pub fn two_phase_bruck_timed<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<NonuniformPhases> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();
    let mut t = NonuniformPhases::default();

    let start = Stopwatch::start();
    let local_max = sendcounts.iter().copied().max().unwrap_or(0);
    let n_max = comm.allreduce_u64(local_max as u64, ReduceOp::Max)? as usize;
    t.allreduce = start.elapsed();

    let copy_start = Stopwatch::start();
    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);
    if p == 1 {
        t.local_copy = copy_start.elapsed();
        return Ok(t);
    }
    let mut working = vec![0u8; p * n_max];
    let rot = rotation_index(me, p);
    let mut cur_size: Vec<usize> = (0..p).map(|j| sendcounts[rot[j]]).collect();
    let mut in_working = vec![false; p];
    t.local_copy += copy_start.elapsed();

    let mut slots: Vec<usize> = Vec::with_capacity(p.div_ceil(2));

    for k in 0..ceil_log2(p) {
        let hop = 1usize << k;
        let dest = sub_mod(me, hop, p);
        let src = add_mod(me, hop, p);

        slots.clear();
        slots.extend(step_rel_indices(p, k).map(|i| add_mod(i, me, p)));

        let meta_start = Stopwatch::start();
        let mut meta_wire: Vec<u8> = Vec::with_capacity(slots.len() * 4);
        for &j in &slots {
            let sz = u32::try_from(cur_size[j])
                .map_err(|_| CommError::BadArgument("block size exceeds u32 metadata"))?;
            meta_wire.extend_from_slice(&sz.to_le_bytes());
        }
        let meta_got =
            comm.sendrecv_buf(dest, meta_tag(k), MsgBuf::from_vec(meta_wire), src, meta_tag(k))?;
        t.meta_comm += meta_start.elapsed();

        let pack_start = Stopwatch::start();
        let mut data_wire: Vec<u8> = Vec::new();
        for &j in &slots {
            let sz = cur_size[j];
            if in_working[j] {
                data_wire.extend_from_slice(&working[j * n_max..j * n_max + sz]);
            } else {
                let d = sdispls[rot[j]];
                data_wire.extend_from_slice(&sendbuf[d..d + sz]);
            }
        }
        t.local_copy += pack_start.elapsed();

        let data_start = Stopwatch::start();
        let data_got =
            comm.sendrecv_buf(dest, data_tag(k), MsgBuf::from_vec(data_wire), src, data_tag(k))?;
        t.data_comm += data_start.elapsed();

        let unpack_start = Stopwatch::start();
        let mut at = 0;
        for (idx, &j) in slots.iter().enumerate() {
            let sz = u32::from_le_bytes(
                meta_got[idx * 4..idx * 4 + 4].try_into().expect("4-byte metadata entry"),
            ) as usize;
            let rel = sub_mod(j, me, p);
            if rel < 2 * hop {
                recvbuf[rdispls[j]..rdispls[j] + sz].copy_from_slice(&data_got[at..at + sz]);
            } else {
                working[j * n_max..j * n_max + sz].copy_from_slice(&data_got[at..at + sz]);
            }
            in_working[j] = true;
            cur_size[j] = sz;
            at += sz;
        }
        t.local_copy += unpack_start.elapsed();
    }
    Ok(t)
}

/// [`super::sloav_alltoallv`] with per-phase timing. The `scan` slot captures
/// SLOAV's final rotation+scan, which two-phase Bruck eliminates.
#[allow(clippy::too_many_arguments)]
pub fn sloav_alltoallv_timed<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<NonuniformPhases> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();
    let mut t = NonuniformPhases::default();

    let mut temp: Vec<Option<MsgBuf>> = vec![None; p];
    let mut sizes: Vec<usize> = (0..p).map(|i| sendcounts[add_mod(me, i, p)]).collect();

    for k in 0..ceil_log2(p) {
        let hop = 1usize << k;
        let dest = add_mod(me, hop, p);
        let src = sub_mod(me, hop, p);
        let offsets: Vec<usize> = step_rel_indices(p, k).collect();

        let pack_start = Stopwatch::start();
        let mut combined = Vec::with_capacity(offsets.len() * 4);
        for &i in &offsets {
            let sz = u32::try_from(sizes[i])
                .map_err(|_| CommError::BadArgument("block size exceeds u32 metadata"))?;
            combined.extend_from_slice(&sz.to_le_bytes());
        }
        for &i in &offsets {
            match &temp[i] {
                Some(block) => combined.extend_from_slice(block),
                None => {
                    let d = sdispls[add_mod(me, i, p)];
                    combined.extend_from_slice(&sendbuf[d..d + sizes[i]]);
                }
            }
        }
        t.local_copy += pack_start.elapsed();

        let meta_start = Stopwatch::start();
        let total = (combined.len() as u64).to_le_bytes();
        let their_total = comm.sendrecv_buf(
            dest,
            meta_tag(k),
            MsgBuf::copy_from_slice(&total),
            src,
            meta_tag(k),
        )?;
        let _ = u64::from_le_bytes(their_total.as_slice().try_into().expect("8-byte size header"));
        t.meta_comm += meta_start.elapsed();

        let data_start = Stopwatch::start();
        let got =
            comm.sendrecv_buf(dest, data_tag(k), MsgBuf::from_vec(combined), src, data_tag(k))?;
        t.data_comm += data_start.elapsed();

        let unpack_start = Stopwatch::start();
        let mut at = offsets.len() * 4;
        for (idx, &i) in offsets.iter().enumerate() {
            let sz = u32::from_le_bytes(
                got[idx * 4..idx * 4 + 4].try_into().expect("4-byte metadata entry"),
            ) as usize;
            temp[i] = Some(got.slice(at..at + sz));
            sizes[i] = sz;
            at += sz;
        }
        t.local_copy += unpack_start.elapsed();
    }

    let scan_start = Stopwatch::start();
    for i in 0..p {
        let src_rank = sub_mod(me, i, p);
        let want = recvcounts[src_rank];
        let out = &mut recvbuf[rdispls[src_rank]..rdispls[src_rank] + want];
        match &temp[i] {
            Some(block) => out.copy_from_slice(block),
            None => {
                let d = sdispls[add_mod(me, i, p)];
                out.copy_from_slice(&sendbuf[d..d + want]);
            }
        }
    }
    t.scan = scan_start.elapsed();
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{build_send, check_recv};
    use super::*;
    use crate::packed_displs;
    use bruck_comm::ThreadComm;
    use bruck_workload::{Distribution, SizeMatrix};

    fn run_timed<F>(m: &SizeMatrix, f: F) -> Vec<NonuniformPhases>
    where
        F: Fn(
                &ThreadComm,
                &[u8],
                &[usize],
                &[usize],
                &mut [u8],
                &[usize],
                &[usize],
            ) -> CommResult<NonuniformPhases>
            + Sync,
    {
        let p = m.p();
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            let t = f(comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
                .unwrap();
            check_recv(me, m, &recvbuf, &rdispls);
            t
        })
    }

    #[test]
    fn timed_two_phase_is_correct_and_has_no_scan() {
        let m = SizeMatrix::generate(Distribution::Uniform, 1, 12, 64);
        for t in run_timed(&m, two_phase_bruck_timed) {
            assert!(t.scan.is_zero(), "two-phase has no scan phase");
            assert!(t.total() > Duration::ZERO);
        }
    }

    #[test]
    fn timed_sloav_is_correct_and_scans() {
        let m = SizeMatrix::generate(Distribution::Uniform, 2, 12, 64);
        for t in run_timed(&m, sloav_alltoallv_timed) {
            assert!(t.scan > Duration::ZERO, "SLOAV pays a final scan");
            assert!(t.allreduce.is_zero(), "SLOAV needs no global max");
        }
    }

    #[test]
    fn timed_variants_match_untimed_output() {
        let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 3, 9, 80);
        let p = m.p();
        let expect = ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, &m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            super::super::two_phase_bruck(
                comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap();
            recvbuf
        });
        let got = ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, &m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            two_phase_bruck_timed(
                comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap();
            recvbuf
        });
        assert_eq!(expect, got);
    }

    #[test]
    fn single_rank_short_circuits() {
        let m = SizeMatrix::uniform(1, 16);
        for t in run_timed(&m, two_phase_bruck_timed) {
            assert!(t.meta_comm.is_zero() && t.data_comm.is_zero());
        }
    }
}
