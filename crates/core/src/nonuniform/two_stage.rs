//! Ranka–Shankar–Alsabti two-stage algorithm (related work, §6): decompose
//! a non-uniform all-to-all into two *balanced* all-to-alls by splitting
//! every block into `P` near-equal pieces.
//!
//! Stage 1 sends piece `i` of every one of my blocks to intermediate rank
//! `i` (prefixed by my counts row so intermediates can parse); stage 2 has
//! each intermediate forward, to every final destination `d`, the pieces it
//! holds for `d`. Each stage's messages are within one byte per block of
//! `total/P²` — "bounded traffic" — at the cost of moving every byte twice
//! and 2(P−1) messages. The baseline the paper contrasts with log-time
//! approaches.

use bruck_comm::{CommError, CommResult, Communicator, MsgBuf};

use super::validate_v;
use crate::common::{add_mod, sub_mod, RANKA_STAGE1_TAG, RANKA_STAGE2_TAG};

/// Bytes of piece `i` (of `p`) of a `len`-byte block: `len/p`, plus one for
/// the first `len mod p` pieces.
#[inline]
pub fn piece_len(len: usize, i: usize, p: usize) -> usize {
    len / p + usize::from(i < len % p)
}

/// Byte offset of piece `i` within its block.
#[inline]
pub fn piece_offset(len: usize, i: usize, p: usize) -> usize {
    i * (len / p) + i.min(len % p)
}

/// Two-stage balanced non-uniform all-to-all (same contract as
/// `MPI_Alltoallv`).
#[allow(clippy::too_many_arguments)]
pub fn ranka_two_stage_alltoallv<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    // ---- Stage 1: scatter pieces to intermediates -----------------------
    // Message to intermediate i: [u32 sendcounts row][piece i of each block].
    let build_stage1 = |i: usize| -> Vec<u8> {
        let mut msg = Vec::with_capacity(4 * p + sendcounts.iter().sum::<usize>() / p + p);
        for &c in sendcounts {
            msg.extend_from_slice(&u32::try_from(c).expect("block size fits u32").to_le_bytes());
        }
        for dst in 0..p {
            let len = sendcounts[dst];
            let off = sdispls[dst] + piece_offset(len, i, p);
            msg.extend_from_slice(&sendbuf[off..off + piece_len(len, i, p)]);
        }
        msg
    };
    for off in 1..p {
        let i = add_mod(me, off, p);
        comm.isend_buf(i, RANKA_STAGE1_TAG, MsgBuf::from_vec(build_stage1(i)))?;
    }

    // held[s] = (counts row of s, piece `me` of each of s's blocks, packed —
    // kept as a view of the stage-1 message, never re-copied).
    let mut held: Vec<(Vec<usize>, MsgBuf)> = (0..p).map(|_| (Vec::new(), MsgBuf::new())).collect();
    held[me] = parse_stage1(MsgBuf::from_vec(build_stage1(me)), p)?;
    for off in 1..p {
        let s = sub_mod(me, off, p);
        let msg = comm.recv_buf(s, RANKA_STAGE1_TAG)?;
        held[s] = parse_stage1(msg, p)?;
    }

    // ---- Stage 2: forward pieces to final destinations ------------------
    // Message to destination d: piece `me` of block (s → d), s ascending.
    //
    // The offset of d's piece within held[s] is a prefix sum over counts.
    // Recomputing it per (s, d) pair is O(P³) per rank — at P = 32768 that
    // packing loop alone dwarfs the exchange. The send loop visits d in ring
    // order (one ascending run, a wrap, a second ascending run), so
    // per-source cursors advanced in step give the same offsets in O(P²)
    // total.
    let mut cursors = vec![0usize; p];
    let mut cursors_at = 0usize; // cursors[s] == offset of piece `cursors_at` in held[s]
    let mut build_stage2 = |d: usize, held: &[(Vec<usize>, MsgBuf)]| -> Vec<u8> {
        if d < cursors_at {
            cursors.iter_mut().for_each(|c| *c = 0); // ring wrapped
            cursors_at = 0;
        }
        while cursors_at < d {
            for (s, (counts, _)) in held.iter().enumerate() {
                cursors[s] += piece_len(counts[cursors_at], me, p);
            }
            cursors_at += 1;
        }
        let mut msg = Vec::new();
        for (s, (counts, pieces)) in held.iter().enumerate() {
            let off = cursors[s];
            msg.extend_from_slice(&pieces[off..off + piece_len(counts[d], me, p)]);
        }
        msg
    };
    for off in 1..p {
        let d = add_mod(me, off, p);
        let msg = build_stage2(d, &held);
        comm.isend_buf(d, RANKA_STAGE2_TAG, MsgBuf::from_vec(msg))?;
    }

    // Receive from every intermediate; scatter pieces into place.
    let mut place = |i: usize, msg: &[u8]| -> CommResult<()> {
        let mut at = 0;
        for src in 0..p {
            let len = recvcounts[src];
            let pl = piece_len(len, i, p);
            let off = rdispls[src] + piece_offset(len, i, p);
            recvbuf[off..off + pl].copy_from_slice(&msg[at..at + pl]);
            at += pl;
        }
        if at != msg.len() {
            return Err(CommError::BadArgument("stage-2 payload length mismatch"));
        }
        Ok(())
    };
    {
        let own = build_stage2(me, &held);
        place(me, &own)?;
    }
    for off in 1..p {
        let i = sub_mod(me, off, p);
        let msg = comm.recv_buf(i, RANKA_STAGE2_TAG)?;
        place(i, &msg)?;
    }
    Ok(())
}

/// Split a stage-1 message into (counts row, packed-pieces view).
fn parse_stage1(msg: MsgBuf, p: usize) -> CommResult<(Vec<usize>, MsgBuf)> {
    if msg.len() < 4 * p {
        return Err(CommError::BadArgument("stage-1 payload too short"));
    }
    let counts: Vec<usize> = msg[..4 * p]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte count")) as usize)
        .collect();
    let pieces = msg.slice(4 * p..);
    Ok((counts, pieces))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, run_and_check_matrix, TEST_SIZES};
    use super::super::AlltoallvAlgorithm::RankaTwoStage;
    use super::*;
    use bruck_workload::{Distribution, SizeMatrix};

    #[test]
    fn piece_arithmetic_partitions_blocks() {
        for len in [0usize, 1, 7, 64, 65, 1023] {
            for p in [1usize, 2, 5, 8, 13] {
                let total: usize = (0..p).map(|i| piece_len(len, i, p)).sum();
                assert_eq!(total, len, "len={len} p={p}");
                let mut at = 0;
                for i in 0..p {
                    assert_eq!(piece_offset(len, i, p), at);
                    at += piece_len(len, i, p);
                }
                // Balanced within one byte.
                let max = (0..p).map(|i| piece_len(len, i, p)).max().unwrap();
                let min = (0..p).map(|i| piece_len(len, i, p)).min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn correct_for_all_communicator_sizes() {
        for p in TEST_SIZES {
            run_and_check(RankaTwoStage, p, 48, 0x2A5A);
        }
    }

    #[test]
    fn correct_for_skewed_and_tiny_blocks() {
        // Blocks smaller than P exercise many zero-length pieces.
        let m = SizeMatrix::generate(Distribution::Uniform, 3, 12, 5);
        run_and_check_matrix(RankaTwoStage, &m);
        let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 3, 10, 200);
        run_and_check_matrix(RankaTwoStage, &m);
    }

    #[test]
    fn zero_blocks() {
        run_and_check_matrix(RankaTwoStage, &SizeMatrix::uniform(6, 0));
    }

    #[test]
    fn stage_messages_are_balanced() {
        use bruck_comm::{Communicator, CountingComm, ThreadComm};

        // With a skewed matrix, stage messages still differ by at most
        // ~4P header + P bytes of rounding.
        let p = 8;
        let mut rows = vec![vec![0usize; p]; p];
        rows[0][1] = 800; // one huge block
        rows[3][4] = 3;
        let m = SizeMatrix::from_rows(rows);
        let logs = ThreadComm::run(p, |comm| {
            let counting = CountingComm::new(comm);
            let me = counting.rank();
            let sendcounts = m.sendcounts(me);
            let sdispls = crate::packed_displs(&sendcounts);
            let sendbuf = vec![0u8; sendcounts.iter().sum()];
            let recvcounts = m.recvcounts(me);
            let rdispls = crate::packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            ranka_two_stage_alltoallv(
                &counting, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap();
            counting.log()
        });
        // Rank 0's stage-1 messages: 800 bytes split into 8 pieces of 100,
        // plus the 4P header each.
        let stage1: Vec<usize> = logs[0]
            .iter()
            .filter(|r| r.tag == crate::common::RANKA_STAGE1_TAG)
            .map(|r| r.len)
            .collect();
        assert_eq!(stage1.len(), p - 1);
        assert!(stage1.iter().all(|&l| l == 4 * p + 100), "{stage1:?}");
    }
}
