//! Per-rank mailboxes: the matching engine behind point-to-point transfers.
//!
//! Every rank owns one [`Mailbox`]. A send deposits the payload into the
//! destination's mailbox under the `(source, tag)` key (the *eager protocol*:
//! the sender never blocks). A receive pops the oldest message matching its
//! `(source, tag)` pair, blocking on a condition variable until one arrives.
//!
//! Matching preserves MPI's **non-overtaking** rule: two messages from the
//! same source with the same tag are received in the order they were sent,
//! because each `(source, tag)` key maps to a FIFO queue.
//!
//! Messages are stored as [`MsgBuf`] views, so a queued message shares its
//! backing region with the sender's pack buffer — the deposit is a
//! reference-count bump, not a copy.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::{MsgBuf, Tag};

/// Per-(source, tag) FIFO queues of undelivered messages.
type MatchQueues = HashMap<(usize, Tag), VecDeque<MsgBuf>>;

/// A single rank's incoming-message store.
///
/// Locking is coarse (one mutex per rank) which is the right trade-off here:
/// contention on a mailbox is between exactly one receiver (the owning rank)
/// and its current senders, and critical sections only move a [`MsgBuf`]
/// (three words).
#[derive(Default)]
pub(crate) struct Mailbox {
    queues: Mutex<MatchQueues>,
    arrived: Condvar,
}

/// Pop the front of the `(src, tag)` queue, removing the key when the queue
/// drains so the map never accumulates dead entries across thousands of
/// fixpoint iterations. Every pop path must go through here.
fn pop_and_trim(queues: &mut MatchQueues, src: usize, tag: Tag) -> Option<MsgBuf> {
    let q = queues.get_mut(&(src, tag))?;
    let msg = q.pop_front();
    if q.is_empty() {
        queues.remove(&(src, tag));
    }
    msg
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// A mailbox outlives any single rank's panic; recover the map rather
    /// than cascading poison panics across every other rank's shutdown path.
    fn lock(&self) -> MutexGuard<'_, MatchQueues> {
        self.queues.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Deposit a message from `src` with `tag`. Never blocks, never copies.
    pub(crate) fn push(&self, src: usize, tag: Tag, data: MsgBuf) {
        let mut queues = self.lock();
        queues.entry((src, tag)).or_default().push_back(data);
        // notify_all: several receives with distinct (src, tag) keys can be
        // parked on the same condvar (collectives never do this, but user
        // code running helper threads may).
        self.arrived.notify_all();
        drop(queues);
    }

    /// Pop the oldest message matching `(src, tag)`, blocking until present.
    pub(crate) fn pop(&self, src: usize, tag: Tag) -> MsgBuf {
        let mut queues = self.lock();
        loop {
            if let Some(msg) = pop_and_trim(&mut queues, src, tag) {
                return msg;
            }
            queues = self.arrived.wait(queues).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Like [`Mailbox::pop`], but refuses (without consuming the message) if
    /// the matching message is longer than `cap` bytes: `Err(message_len)`.
    ///
    /// This is what makes `recv_into` truncation non-destructive — the check
    /// happens under the lock *before* the message leaves the queue, so a
    /// caller that retries with a bigger buffer still observes the message.
    pub(crate) fn pop_bounded(&self, src: usize, tag: Tag, cap: usize) -> Result<MsgBuf, usize> {
        let mut queues = self.lock();
        loop {
            if let Some(front) = queues.get(&(src, tag)).and_then(VecDeque::front) {
                if front.len() > cap {
                    return Err(front.len());
                }
                return Ok(pop_and_trim(&mut queues, src, tag).expect("front exists"));
            }
            queues = self.arrived.wait(queues).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Pop with a deadline: `None` if no matching message arrives in time.
    pub(crate) fn pop_timeout(
        &self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Option<MsgBuf> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queues = self.lock();
        loop {
            if let Some(msg) = pop_and_trim(&mut queues, src, tag) {
                return Some(msg);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timed_out) = self
                .arrived
                .wait_timeout(queues, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            queues = guard;
            if timed_out.timed_out() {
                // One last check: the message may have raced the timeout.
                // (Goes through pop_and_trim like every other pop, so a
                // race-won pop cannot strand an empty dead key in the map.)
                return pop_and_trim(&mut queues, src, tag);
            }
        }
    }

    /// Non-blocking probe: the byte length of the next matching message.
    pub(crate) fn probe(&self, src: usize, tag: Tag) -> Option<usize> {
        let queues = self.lock();
        queues.get(&(src, tag)).and_then(VecDeque::front).map(MsgBuf::len)
    }

    /// Number of undelivered messages (diagnostics / leak tests).
    pub(crate) fn pending(&self) -> usize {
        self.lock().values().map(VecDeque::len).sum()
    }

    /// Number of match-map keys whose queue is empty. Must always be 0: every
    /// pop path trims drained keys. Exposed for leak tests.
    pub(crate) fn dead_keys(&self) -> usize {
        self.lock().values().filter(|q| q.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn buf(bytes: &[u8]) -> MsgBuf {
        MsgBuf::copy_from_slice(bytes)
    }

    #[test]
    fn push_pop_fifo_per_key() {
        let mb = Mailbox::new();
        mb.push(0, 7, buf(&[1]));
        mb.push(0, 7, buf(&[2]));
        mb.push(1, 7, buf(&[9]));
        assert_eq!(mb.pop(0, 7), vec![1]);
        assert_eq!(mb.pop(0, 7), vec![2]);
        assert_eq!(mb.pop(1, 7), vec![9]);
        assert_eq!(mb.pending(), 0);
        assert_eq!(mb.dead_keys(), 0);
    }

    #[test]
    fn push_is_a_refcount_bump_not_a_copy() {
        let mb = Mailbox::new();
        let region = MsgBuf::from_vec((0u8..64).collect());
        let ptr = region.as_slice().as_ptr();
        mb.push(0, 1, region.slice(16..32));
        let got = mb.pop(0, 1);
        // The queued message aliases the sender's region.
        assert_eq!(got.as_slice().as_ptr(), unsafe { ptr.add(16) });
        assert_eq!(got, region.slice(16..32));
    }

    #[test]
    fn pop_blocks_until_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop(3, 11));
        std::thread::sleep(Duration::from_millis(20));
        mb.push(3, 11, buf(&[42]));
        assert_eq!(t.join().unwrap(), vec![42]);
    }

    #[test]
    fn probe_reports_length_without_consuming() {
        let mb = Mailbox::new();
        assert_eq!(mb.probe(0, 0), None);
        mb.push(0, 0, buf(&[0; 17]));
        assert_eq!(mb.probe(0, 0), Some(17));
        assert_eq!(mb.pop(0, 0).len(), 17);
    }

    #[test]
    fn pop_bounded_rejects_without_consuming() {
        let mb = Mailbox::new();
        mb.push(2, 5, buf(&[7; 16]));
        assert_eq!(mb.pop_bounded(2, 5, 4), Err(16));
        assert_eq!(mb.pending(), 1, "rejected message must stay queued");
        let got = mb.pop_bounded(2, 5, 16).unwrap();
        assert_eq!(got, vec![7; 16]);
        assert_eq!(mb.pending(), 0);
        assert_eq!(mb.dead_keys(), 0);
    }

    #[test]
    fn distinct_tags_do_not_match() {
        let mb = Arc::new(Mailbox::new());
        mb.push(0, 1, buf(&[1]));
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop(0, 2));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "pop(0,2) must not match tag 1");
        mb.push(0, 2, buf(&[2]));
        assert_eq!(t.join().unwrap(), vec![2]);
        assert_eq!(mb.pop(0, 1), vec![1]);
    }

    #[test]
    fn pop_timeout_race_leaves_no_dead_keys() {
        // Regression test for the race-path pop that used to bypass key
        // cleanup: hammer pushes that land right around the timeout deadline
        // and assert the match map never strands an empty queue.
        let mb = Arc::new(Mailbox::new());
        for round in 0..200u64 {
            let mb2 = Arc::clone(&mb);
            let pusher = std::thread::spawn(move || {
                // Jitter the push across the receiver's deadline window.
                std::thread::sleep(Duration::from_micros(round % 120));
                mb2.push(1, 3, buf(&[round as u8]));
            });
            let got = mb.pop_timeout(1, 3, Duration::from_micros(60));
            pusher.join().unwrap();
            if got.is_none() {
                // Push lost the race: drain it so the next round starts clean.
                assert_eq!(mb.pop(1, 3), vec![round as u8]);
            }
            assert_eq!(mb.dead_keys(), 0, "round {round} stranded an empty key");
        }
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn pop_timeout_returns_none_when_nothing_arrives() {
        let mb = Mailbox::new();
        assert!(mb.pop_timeout(0, 0, Duration::from_millis(5)).is_none());
        assert_eq!(mb.dead_keys(), 0);
    }
}
