//! Minimal Criterion-style benchmark harness (std-only).
//!
//! The workspace builds hermetically with zero external crates, so the
//! `[[bench]]` targets (all `harness = false`) drive their measurements
//! through this module instead of Criterion. Same shape as the Criterion
//! API the benches were written against — groups, per-function ids,
//! `iter`/`iter_custom`-style closures — with calibration (pick an
//! iteration count that fills a target window), warm-up, and median ± MAD
//! reporting, which is also the paper's §2.2 methodology.

use std::time::{Duration, Instant};

use crate::{mad, median};

/// A named group of related measurements (one figure/subplot).
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    target: Duration,
}

impl BenchGroup {
    /// Start a group; prints the header immediately.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== {name} ==");
        BenchGroup { name, sample_size: 10, target: Duration::from_millis(20) }
    }

    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock per sample; calibration picks an iteration count
    /// that roughly fills it (default 20 ms).
    pub fn target_time(&mut self, t: Duration) -> &mut Self {
        self.target = t;
        self
    }

    /// Measure with caller-managed batching: `f(iters)` runs the workload
    /// `iters` times and returns the *total* elapsed time (Criterion's
    /// `iter_custom`). Use this when setup (thread spawn, buffer fill) must
    /// stay outside the timed region.
    pub fn bench_custom<F: FnMut(u64) -> Duration>(&mut self, id: &str, mut f: F) {
        // Warm-up + calibration probe.
        let probe = f(1).max(Duration::from_nanos(1));
        let iters = (self.target.as_secs_f64() / probe.as_secs_f64()).clamp(1.0, 1e6) as u64;
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| f(iters).as_secs_f64() / iters as f64)
            .collect();
        let spread = mad(&samples);
        let mid = median(&mut samples);
        println!(
            "{:<40} {:>12}/iter  (MAD {}, {} samples x {} iters)",
            format!("{}/{id}", self.name),
            fmt_time(mid),
            fmt_time(spread),
            self.sample_size,
            iters,
        );
    }

    /// Measure a closure per call (Criterion's plain `iter`).
    pub fn bench<F: FnMut()>(&mut self, id: &str, mut f: F) {
        self.bench_custom(id, |iters| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed()
        });
    }

    /// End the group (parity with Criterion's `finish`).
    pub fn finish(self) {}
}

/// Render seconds with an SI unit fitting its magnitude.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = BenchGroup::new("harness_selftest");
        g.sample_size(3).target_time(Duration::from_micros(200));
        let mut calls = 0u64;
        g.bench("spin", || {
            calls += 1;
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert!(calls >= 3, "warm-up + samples must all run (got {calls})");
        g.finish();
    }

    #[test]
    fn fmt_time_picks_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
