//! [`ChaosComm`]: deterministic schedule perturbation for testing.
//!
//! Wraps a communicator and injects seeded pseudo-random delays (spin-yields)
//! before sends and receives. This perturbs thread interleavings enough to
//! surface ordering assumptions — algorithms must be correct under *any*
//! message arrival order permitted by the matching rules, and the test suite
//! runs the full algorithm matrix under this wrapper.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{CommResult, Communicator, MsgBuf, RecvReq, Tag};

/// A schedule-perturbing wrapper. Deterministic per seed *per call sequence*
/// (each operation advances a per-wrapper counter), though the resulting
/// thread interleaving is of course up to the OS.
pub struct ChaosComm<'a, C: Communicator + ?Sized> {
    inner: &'a C,
    state: AtomicU64,
    /// Maximum spin-yield iterations injected per operation.
    max_spin: u32,
}

impl<'a, C: Communicator + ?Sized> ChaosComm<'a, C> {
    /// Wrap `inner`; delays derive from `seed` and the rank.
    pub fn new(inner: &'a C, seed: u64) -> Self {
        let state = seed ^ (inner.rank() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ChaosComm { inner, state: AtomicU64::new(splitmix(state)), max_spin: 64 }
    }

    fn jitter(&self) {
        // One atomic read-modify-write. A load/store pair here would be a
        // lost-update race when the wrapper is shared: two threads could read
        // the same state and advance the stream once instead of twice,
        // breaking determinism-per-seed (`bruck-lint`'s `no-relaxed-rmw` rule
        // exists to catch exactly that pattern). Relaxed suffices — the state
        // gates no memory publication, it only feeds the spin count.
        let s = match self.state.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
            Some(splitmix(s))
        }) {
            Ok(prev) | Err(prev) => splitmix(prev),
        };
        let spins = (s % u64::from(self.max_spin)) as u32;
        for _ in 0..spins {
            std::thread::yield_now();
        }
    }
}

pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<C: Communicator + ?Sized> Communicator for ChaosComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now(&self) -> std::time::Duration {
        self.inner.now()
    }

    fn sleep(&self, d: std::time::Duration) {
        self.inner.sleep(d)
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.jitter();
        self.inner.send_buf(dest, tag, buf)
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.jitter();
        self.inner.recv_buf(src, tag)
    }

    fn send(&self, dest: usize, tag: Tag, data: &[u8]) -> CommResult<()> {
        self.jitter();
        self.inner.send(dest, tag, data)
    }

    fn recv(&self, src: usize, tag: Tag) -> CommResult<Vec<u8>> {
        self.jitter();
        self.inner.recv(src, tag)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        self.jitter();
        self.inner.recv_into(src, tag, buf)
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        // Perturb the nonblocking paths too: a probe that races a concurrent
        // send must be allowed to answer either way, and algorithms polling
        // probe/irecv must stay correct under any such answer.
        self.jitter();
        self.inner.probe(src, tag)
    }

    fn irecv(&self, src: usize, tag: Tag) -> CommResult<RecvReq> {
        self.jitter();
        self.inner.irecv(src, tag)
    }

    fn recv_buf_timeout(
        &self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> CommResult<MsgBuf> {
        self.jitter();
        self.inner.recv_buf_timeout(src, tag, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReduceOp, ThreadComm};

    #[test]
    fn collectives_survive_chaos() {
        for seed in 0..5u64 {
            let sums = ThreadComm::run(7, move |comm| {
                let chaos = ChaosComm::new(comm, seed);
                chaos.barrier().unwrap();
                chaos.allreduce_u64(chaos.rank() as u64, ReduceOp::Sum).unwrap()
            });
            assert!(sums.iter().all(|&s| s == 21), "seed {seed}");
        }
    }

    #[test]
    fn shared_wrapper_advances_the_stream_atomically() {
        // Regression test for the lost-update race: `jitter` used to be a
        // load/store pair, so concurrent callers could advance the splitmix
        // stream once instead of twice. With `fetch_update`, N jitter calls
        // advance the state by exactly N splitmix steps regardless of how the
        // callers interleave.
        ThreadComm::run(1, |comm| {
            let chaos = ChaosComm::new(comm, 42);
            let start = chaos.state.load(Ordering::Relaxed);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..250 {
                            chaos.jitter();
                        }
                    });
                }
            });
            let mut expect = start;
            for _ in 0..1000 {
                expect = splitmix(expect);
            }
            assert_eq!(chaos.state.load(Ordering::Relaxed), expect);
        });
    }

    #[test]
    fn probe_and_irecv_advance_the_jitter_stream() {
        // Regression test for the pure-passthrough nonblocking paths: probe
        // and irecv must perturb the schedule (advance the seeded stream)
        // exactly like the blocking operations do.
        ThreadComm::run(1, |comm| {
            let chaos = ChaosComm::new(comm, 7);
            let before = chaos.state.load(Ordering::Relaxed);
            chaos.probe(0, 1).unwrap();
            let after_probe = chaos.state.load(Ordering::Relaxed);
            assert_ne!(before, after_probe, "probe must jitter");
            chaos.irecv(0, 1).unwrap();
            let after_irecv = chaos.state.load(Ordering::Relaxed);
            assert_ne!(after_probe, after_irecv, "irecv must jitter");
        });
    }

    #[test]
    fn polling_loops_survive_chaos() {
        // A probe/irecv consumer loop under jitter still sees every message.
        ThreadComm::run(2, |comm| {
            let chaos = ChaosComm::new(comm, 11);
            if chaos.rank() == 0 {
                for i in 0..20u8 {
                    chaos.send(1, 2, &[i]).unwrap();
                }
            } else {
                let mut got = 0u8;
                while got < 20 {
                    if chaos.probe(0, 2).unwrap().is_some() {
                        let req = chaos.irecv(0, 2).unwrap();
                        assert_eq!(chaos.wait(req).unwrap(), vec![got]);
                        got += 1;
                    }
                }
            }
        });
    }

    #[test]
    fn ordering_guarantee_holds_under_chaos() {
        ThreadComm::run(2, |comm| {
            let chaos = ChaosComm::new(comm, 9);
            if chaos.rank() == 0 {
                for i in 0..50u8 {
                    chaos.send(1, 4, &[i]).unwrap();
                }
            } else {
                for i in 0..50u8 {
                    assert_eq!(chaos.recv(0, 4).unwrap(), vec![i]);
                }
            }
        });
    }
}
