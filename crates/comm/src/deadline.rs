//! [`DeadlineComm`]: a shared wall-clock budget over every blocking receive.
//!
//! Algorithms are written against blocking receives; fault tolerance needs
//! every one of those receives to give up when the exchange's overall budget
//! is spent. Rather than threading a deadline parameter through every
//! algorithm, this wrapper fixes a deadline on the inner communicator's own
//! clock ([`Communicator::now`]) at construction and converts each blocking
//! receive into a [`Communicator::recv_buf_timeout`] with the *remaining*
//! budget — so one deadline covers the whole exchange, however
//! many receives it takes, and an algorithm run under it either completes or
//! returns [`crate::CommError::Timeout`] close to the deadline.
//!
//! Sends and probes pass straight through (they never block under the eager
//! protocol). Note one semantic difference forced by the timeout path:
//! [`Communicator::recv_into`] through this wrapper consumes the message
//! before the size check, so a [`crate::CommError::Truncated`] receive is
//! *destructive* here (the inner mailbox's non-destructive retry contract
//! does not survive deadline conversion). Resilient drivers size their
//! buffers from the negotiated counts, so this is acceptable in exchange for
//! the bounded-wait guarantee.

use std::time::Duration;

use crate::{CommError, CommResult, Communicator, MsgBuf, RecvReq, Tag};

/// A deadline-enforcing wrapper: every blocking receive observes the same
/// budget, fixed at construction on the inner communicator's clock — wall
/// time under the threaded backend, virtual time under [`crate::SimComm`]
/// (where the timeout fires after exactly the budget, instantly).
pub struct DeadlineComm<'a, C: Communicator + ?Sized> {
    inner: &'a C,
    /// Absolute deadline as a timestamp on `inner.now()`'s axis.
    deadline: Duration,
}

impl<'a, C: Communicator + ?Sized> DeadlineComm<'a, C> {
    /// Wrap `inner` with a budget of `budget` from now.
    pub fn new(inner: &'a C, budget: Duration) -> Self {
        let deadline = inner.now() + budget;
        DeadlineComm { inner, deadline }
    }

    /// Wrap `inner` with an explicit absolute deadline — a timestamp on the
    /// inner communicator's [`Communicator::now`] axis (lets several
    /// wrappers — or several phases — share one deadline).
    pub fn until(inner: &'a C, deadline: Duration) -> Self {
        DeadlineComm { inner, deadline }
    }

    /// Time left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_sub(self.inner.now())
    }

    /// Whether the budget is already spent.
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }
}

impl<C: Communicator + ?Sized> Communicator for DeadlineComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.inner.send_buf(dest, tag, buf)
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        let remaining = self.remaining();
        if remaining == Duration::ZERO {
            return Err(CommError::Timeout { src, tag, waited: Duration::ZERO });
        }
        self.inner.recv_buf_timeout(src, tag, remaining)
    }

    fn recv_buf_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> CommResult<MsgBuf> {
        // An explicit per-call timeout is still clipped to the shared budget.
        let remaining = self.remaining();
        if remaining == Duration::ZERO {
            return Err(CommError::Timeout { src, tag, waited: Duration::ZERO });
        }
        self.inner.recv_buf_timeout(src, tag, timeout.min(remaining))
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        // Destructive on truncation — see the module docs.
        let msg = self.recv_buf(src, tag)?;
        if msg.len() > buf.len() {
            return Err(CommError::Truncated { message_len: msg.len(), buffer_len: buf.len() });
        }
        buf[..msg.len()].copy_from_slice(&msg);
        Ok(msg.len())
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.inner.probe(src, tag)
    }

    fn irecv(&self, src: usize, tag: Tag) -> CommResult<RecvReq> {
        self.inner.irecv(src, tag)
    }

    fn now(&self) -> Duration {
        self.inner.now()
    }

    fn sleep(&self, d: Duration) {
        self.inner.sleep(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadComm;
    use std::time::Instant;

    #[test]
    fn completes_within_budget_passes_through() {
        ThreadComm::run(2, |comm| {
            let dc = DeadlineComm::new(comm, Duration::from_secs(5));
            if dc.rank() == 0 {
                dc.send(1, 1, &[1, 2, 3]).unwrap();
            } else {
                assert_eq!(dc.recv(0, 1).unwrap(), vec![1, 2, 3]);
                assert!(!dc.expired());
            }
        });
    }

    #[test]
    fn blocking_recv_becomes_timeout_at_the_deadline() {
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                let dc = DeadlineComm::new(comm, Duration::from_millis(40));
                let start = Instant::now();
                let err = dc.recv_buf(1, 7).unwrap_err();
                assert!(matches!(err, CommError::Timeout { src: 1, tag: 7, .. }));
                assert!(start.elapsed() >= Duration::from_millis(40));
                assert!(dc.expired());
            }
        });
    }

    #[test]
    fn budget_is_shared_across_receives() {
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0u8]).unwrap();
            } else {
                let dc = DeadlineComm::new(comm, Duration::from_millis(60));
                // First receive succeeds and eats almost no budget...
                dc.recv_buf(0, 1).unwrap();
                // ...the second blocks until the SAME deadline, not 60ms more.
                let start = Instant::now();
                let err = dc.recv_buf(0, 2).unwrap_err();
                assert!(matches!(err, CommError::Timeout { .. }));
                assert!(start.elapsed() < Duration::from_millis(200));
            }
        });
    }

    #[test]
    fn n_sequential_receives_share_one_absolute_budget() {
        // N recv_timeouts against a silent peer draw from ONE budget fixed at
        // construction: the first burns essentially all of it (its generous
        // per-call timeout is clipped to the remaining budget), every later
        // receive times out deterministically with ~zero wait, and the total
        // is bounded by the budget — not N × budget.
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                let budget = Duration::from_millis(80);
                let dc = DeadlineComm::new(comm, budget);
                let n: u32 = 6;
                let start = Instant::now();
                let mut waits = Vec::new();
                for i in 0..n {
                    let t0 = Instant::now();
                    let err = dc.recv_timeout(1, 100 + i, Duration::from_secs(10)).unwrap_err();
                    assert!(matches!(err, CommError::Timeout { .. }), "receive {i}: {err:?}");
                    waits.push(t0.elapsed());
                }
                let total = start.elapsed();
                assert!(total >= budget, "the deadline must be observed: {total:?}");
                assert!(total < budget * 3, "receives share ONE budget, got {total:?}");
                for (i, w) in waits.iter().enumerate().skip(1) {
                    assert!(*w < budget, "receive {i} blocked past the shared deadline: {w:?}");
                }
                assert!(dc.expired());
            }
        });
    }

    #[test]
    fn expired_budget_fails_immediately() {
        ThreadComm::run(1, |comm| {
            let dc = DeadlineComm::new(comm, Duration::ZERO);
            let err = dc.recv_buf_timeout(0, 1, Duration::from_secs(10)).unwrap_err();
            assert!(matches!(err, CommError::Timeout { waited: Duration::ZERO, .. }));
        });
    }
}
