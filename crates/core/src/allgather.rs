//! Bruck's log-time allgather — the other collective from Bruck et al. [9],
//! here in its variable-length form.
//!
//! The ring `allgatherv` in `bruck-comm` takes `P − 1` rounds; Bruck's
//! doubling takes `⌈log₂ P⌉`: after step `k` each rank holds the blocks of
//! sources `p .. p + 2^k − 1` (mod `P`), and step `k` ships that whole run to
//! `p − 2^k` while receiving the next run from `p + 2^k`. Blocks are
//! self-describing on the wire (u32 length prefix), so no separate size
//! exchange is needed even for ragged payloads — the same
//! metadata-coupling idea as two-phase Bruck, one message earlier.

use bruck_comm::{CommError, CommResult, Communicator, MsgBuf};

use crate::common::{add_mod, ceil_log2, sub_mod, uniform_step_tag};

/// Log-time allgather of one variable-length byte payload per rank; result
/// is indexed by rank.
pub fn bruck_allgatherv<C: Communicator + ?Sized>(
    comm: &C,
    data: &[u8],
) -> CommResult<Vec<Vec<u8>>> {
    let p = comm.size();
    let me = comm.rank();
    if data.len() > u32::MAX as usize {
        return Err(CommError::BadArgument("payload exceeds u32 framing"));
    }

    // Running concatenation of framed blocks for sources me, me+1, ...
    let mut run = Vec::with_capacity(data.len() + 4);
    run.extend_from_slice(&(data.len() as u32).to_le_bytes());
    run.extend_from_slice(data);
    let mut have = 1usize;

    for k in 0..ceil_log2(p) {
        let hop = 1usize << k;
        let dest = sub_mod(me, hop, p);
        let src = add_mod(me, hop, p);
        // The receiver already holds `have` blocks; it needs at most
        // P − have more. Send the prefix covering min(have, P − have) blocks
        // — for power-of-two P that is the whole run.
        let need = (p - have).min(have);
        let send_slice = if need == have {
            &run[..]
        } else {
            // Walk the framing to find the end of the `need`-th block.
            let mut at = 0;
            for _ in 0..need {
                let len = u32::from_le_bytes(
                    run[at..at + 4].try_into().expect("4-byte frame header"),
                ) as usize;
                at += 4 + len;
            }
            &run[..at]
        };
        let got = comm.sendrecv_buf(
            dest,
            uniform_step_tag(k),
            MsgBuf::copy_from_slice(send_slice),
            src,
            uniform_step_tag(k),
        )?;
        run.extend_from_slice(&got);
        have = count_frames(&run)?;
    }

    // Unpack: frame j holds source (me + j) mod P.
    let mut out = vec![Vec::new(); p];
    let mut at = 0;
    let mut j = 0usize;
    while at < run.len() {
        let len =
            u32::from_le_bytes(run[at..at + 4].try_into().expect("4-byte frame header")) as usize;
        at += 4;
        out[add_mod(me, j, p)] = run[at..at + len].to_vec();
        at += len;
        j += 1;
    }
    if j != p {
        return Err(CommError::BadArgument("allgather ended with missing blocks"));
    }
    Ok(out)
}

fn count_frames(run: &[u8]) -> CommResult<usize> {
    let mut at = 0;
    let mut n = 0;
    while at < run.len() {
        if at + 4 > run.len() {
            return Err(CommError::BadArgument("torn frame header"));
        }
        let len =
            u32::from_le_bytes(run[at..at + 4].try_into().expect("4-byte frame header")) as usize;
        at += 4 + len;
        n += 1;
    }
    if at != run.len() {
        return Err(CommError::BadArgument("torn frame payload"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_comm::{CountingComm, ThreadComm, VectorCollectives};

    #[test]
    fn gathers_ragged_payloads_for_all_sizes() {
        for p in [1usize, 2, 3, 4, 5, 8, 12, 16, 17] {
            let out = ThreadComm::run(p, |comm| {
                let me = comm.rank();
                let mine: Vec<u8> = (0..(me * 3) % 7).map(|i| (me * 13 + i) as u8).collect();
                bruck_allgatherv(comm, &mine).unwrap()
            });
            for got in out {
                for (src, payload) in got.iter().enumerate() {
                    let expect: Vec<u8> =
                        (0..(src * 3) % 7).map(|i| (src * 13 + i) as u8).collect();
                    assert_eq!(payload, &expect, "p={p} src={src}");
                }
            }
        }
    }

    #[test]
    fn matches_ring_allgatherv() {
        let p = 9;
        let out = ThreadComm::run(p, |comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let bruck = bruck_allgatherv(comm, &mine).unwrap();
            let ring = comm.allgatherv_bytes(&mine).unwrap();
            (bruck, ring)
        });
        for (bruck, ring) in out {
            assert_eq!(bruck, ring);
        }
    }

    #[test]
    fn log_time_message_count() {
        // Bruck: ⌈log₂ P⌉ messages per rank; the ring needs P − 1.
        let p = 16;
        let counts = ThreadComm::run(p, |comm| {
            let counting = CountingComm::new(comm);
            bruck_allgatherv(&counting, &[1, 2, 3]).unwrap();
            counting.stats().messages
        });
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn empty_payloads() {
        let out = ThreadComm::run(5, |comm| bruck_allgatherv(comm, &[]).unwrap());
        for got in out {
            assert!(got.iter().all(Vec::is_empty));
        }
    }
}
