//! `bruck-tune` — online auto-tuning sweep over the engine's knob space.
//!
//! Closes the loop the paper leaves open: instead of hand-picking a variant
//! per machine, measure the *named config points* of the configurable engine
//! on the event runtime, feed the wall clocks to [`AutoTuner`] (observe →
//! refit → select), and persist the per-workload winners as a versioned
//! [`TuningTable`] (`tuning.table`). Every measured cell also lands in a
//! `BENCH_PR9.json` artifact so verify.sh can gate the engine's dispatch
//! overhead against the committed baseline.
//!
//! ```text
//! bruck-tune --smoke [--check-against BENCH_PR9.json]   # verify.sh gate
//! bruck-tune --out BENCH_PR9.json --table tuning.table  # full artifact
//!   [--p 8,16,32] [--workers N] [--refit-rounds R]
//! ```
//!
//! Cells are keyed `(config key, P, n_cap)`; `--check-against` compares each
//! fresh cell's msgs/sec to the same cell in the committed artifact —
//! > [`ADVISORY_SLOWDOWN`]× slower warns, > [`FATAL_SLOWDOWN`]× slower fails
//! (the same bars as `bruck-scale`: wall clock on shared CI is noisy; the
//! fatal bar catches order-of-magnitude mistakes like an O(P) scan on the
//! dispatch path, not 20% jitter).
//!
//! The selection grid extrapolates beyond the measured grid on purpose: the
//! α–β model is what lets 26 tiny EventComm cells pick winners at P = 32768.

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use bruck_bench::export::write_text;
use bruck_comm::{Communicator, EventComm, MeteredComm};
use bruck_core::{
    configurable_alltoallv, packed_displs, AlltoallvAlgorithm, EngineConfig, EngineTopology,
    IntermediateLayout, PaddingRule,
};
use bruck_model::{AutoTuner, MachineModel, NonuniformAlgo, TuningTable};
use bruck_workload::{Distribution, SizeMatrix};

/// Slowdown ratio that prints an advisory warning in `--check-against`.
const ADVISORY_SLOWDOWN: f64 = 1.6;
/// Slowdown ratio that fails the `--check-against` gate.
const FATAL_SLOWDOWN: f64 = 8.0;
/// Representative max block size the per-workload winners are predicted at
/// (the table key is `(P, density, dist)` — density, not n, carries the
/// workload shape, so one working point per key is persisted).
const SELECT_N_MAX: usize = 1024;

/// Named config points paired with the model algorithm whose wall clock they
/// calibrate (Reference has no closed form — it is measured for the artifact
/// but not fed to the fitter).
const CALIBRATION_PAIRS: [(AlltoallvAlgorithm, NonuniformAlgo); 8] = [
    (AlltoallvAlgorithm::SpreadOut, NonuniformAlgo::SpreadOut),
    (AlltoallvAlgorithm::Vendor, NonuniformAlgo::Vendor),
    (AlltoallvAlgorithm::PaddedBruck, NonuniformAlgo::PaddedBruck),
    (AlltoallvAlgorithm::PaddedAlltoall, NonuniformAlgo::PaddedAlltoall),
    (AlltoallvAlgorithm::TwoPhaseBruck, NonuniformAlgo::TwoPhaseBruck),
    (AlltoallvAlgorithm::Sloav, NonuniformAlgo::Sloav),
    (AlltoallvAlgorithm::Hierarchical, NonuniformAlgo::Hierarchical),
    (AlltoallvAlgorithm::RankaTwoStage, NonuniformAlgo::RankaTwoStage),
];

/// The candidate set the tuner selects from: all nine named points plus
/// off-point members of the knob space the legacy API could not express.
fn candidates() -> Vec<EngineConfig> {
    let mut out: Vec<EngineConfig> =
        EngineConfig::named_points().iter().map(|(cfg, _)| *cfg).collect();
    // Radix-4 two-phase Bruck: fewer phases, more steps per phase.
    out.push(EngineConfig {
        radix: 4,
        ..EngineConfig::as_two_phase()
    });
    // Radix-4 block-view (SLOAV-style) Bruck.
    out.push(EngineConfig {
        radix: 4,
        ..EngineConfig::as_sloav()
    });
    // Tightly throttled direct exchange (window 8 instead of the vendor 32).
    out.push(EngineConfig {
        throttle_window: Some(8),
        ..EngineConfig::as_spread_out()
    });
    // Adaptive padding: pad only when the global max block is small.
    out.push(EngineConfig {
        topology: EngineTopology::Bruck,
        radix: 2,
        throttle_window: None,
        padding: PaddingRule::Threshold(64),
        layout: IntermediateLayout::Monolithic,
        two_phase_split: true,
    });
    out
}

/// One measured cell: `config` on the event runtime at `(P, n_cap)`.
struct Cell {
    config: String,
    p: usize,
    n: usize,
    workers: usize,
    wall_s: f64,
    messages: usize,
}

impl Cell {
    fn msgs_per_s(&self) -> f64 {
        if self.wall_s > 0.0 { self.messages as f64 / self.wall_s } else { 0.0 }
    }

    fn to_json_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"algorithm\":\"{}\",\"p\":{},\"n\":{},\"workers\":{},\"wall_s\":{:.6},\
             \"messages\":{},\"msgs_per_s\":{:.1}}}",
            self.config,
            self.p,
            self.n,
            self.workers,
            self.wall_s,
            self.messages,
            self.msgs_per_s()
        );
        s
    }
}

/// Run one config on the event runtime and return the measured cell. The
/// production entry point (`configurable_alltoallv`) is what's timed, so the
/// snap-to-variant dispatch overhead is inside the measurement.
fn run_cell(cfg: &EngineConfig, m: &SizeMatrix, n_cap: usize, workers: usize) -> Cell {
    let p = m.p();
    let key = cfg.key();
    let start = Instant::now();
    let (_, report) = EventComm::run_report(p, workers, |comm| {
        let metered = MeteredComm::with_key(comm, cfg.key());
        let me = metered.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf = vec![0x5Au8; sendcounts.iter().sum()];
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        configurable_alltoallv(
            &metered, cfg, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
        )
        .unwrap_or_else(|e| panic!("{} at p={p} failed: {e}", cfg.key()));
        let mm = metered.metrics();
        assert!(
            mm.consistency_errors().is_empty(),
            "{} at p={p}: metered consistency errors: {:?}",
            cfg.key(),
            mm.consistency_errors()
        );
    });
    let wall_s = start.elapsed().as_secs_f64();
    if report.pending_messages != 0 || report.dead_match_keys != 0 {
        panic!(
            "{key} at p={p}: transport leak ({} pending, {} dead keys)",
            report.pending_messages, report.dead_match_keys
        );
    }
    Cell { config: key, p, n: n_cap, workers, wall_s, messages: report.messages }
}

/// Render the artifact: header, fit quality, selections, one cell per line.
fn artifact_json(
    workers: usize,
    fit_log_mse: f64,
    table: &TuningTable,
    cells: &[Cell],
) -> String {
    let mut out = String::from("{\"schema\":\"bruck-tune/BENCH_PR9\",");
    let _ = write!(out, "\"workers\":{workers},\"fit_log_mse\":{fit_log_mse:.6},");
    out.push_str("\"selections\":[");
    for (i, e) in table.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"p\":{},\"density\":{},\"dist\":\"{}\",\"config\":\"{}\",\
             \"predicted_s\":{:e}}}",
            e.key.p, e.key.density_permille, e.key.dist, e.config.key(), e.predicted_s
        );
    }
    out.push_str("],\"cells\":[\n");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&c.to_json_line());
    }
    out.push_str("\n]}\n");
    out
}

/// Pull `"field":<number>` out of a single JSON cell line.
fn field_f64(line: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Find the committed cell line matching `(config key, p, n)`.
fn find_cell_line<'t>(text: &'t str, config: &str, p: usize, n: usize) -> Option<&'t str> {
    let alg_pat = format!("\"algorithm\":\"{config}\"");
    let p_pat = format!("\"p\":{p},");
    let n_pat = format!("\"n\":{n},");
    text.lines().find(|l| l.contains(&alg_pat) && l.contains(&p_pat) && l.contains(&n_pat))
}

/// Compare fresh cells to the committed artifact. Returns the number of
/// fatal regressions.
fn check_against(baseline: &str, cells: &[Cell]) -> usize {
    let mut fatal = 0;
    for cell in cells {
        let Some(line) = find_cell_line(baseline, &cell.config, cell.p, cell.n) else {
            println!(
                "  {} p={} n={}: no baseline cell (new coverage, nothing to compare)",
                cell.config, cell.p, cell.n
            );
            continue;
        };
        let Some(base_mps) = field_f64(line, "msgs_per_s") else {
            continue;
        };
        let now_mps = cell.msgs_per_s();
        let slowdown = if now_mps > 0.0 { base_mps / now_mps } else { f64::INFINITY };
        let verdict = if slowdown > FATAL_SLOWDOWN {
            fatal += 1;
            "FATAL"
        } else if slowdown > ADVISORY_SLOWDOWN {
            "advisory"
        } else {
            "ok"
        };
        println!(
            "  {} p={} n={}: {:.0} msgs/s vs baseline {:.0} ({:.2}x {}) [{verdict}]",
            cell.config,
            cell.p,
            cell.n,
            now_mps,
            base_mps,
            slowdown.max(1.0 / slowdown.max(1e-9)),
            if slowdown >= 1.0 { "slower" } else { "faster" },
        );
    }
    fatal
}

fn parse_usize_list(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.trim().parse().unwrap_or_else(|_| panic!("bad number in list: {t}")))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke_mode = false;
    let mut out_path: Option<String> = None;
    let mut table_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut ps: Vec<usize> = vec![8, 16, 32];
    let mut workers = bounded_workers();
    let mut refit_rounds = 24usize;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} requires a value")).to_string()
        };
        match a.as_str() {
            "--smoke" => smoke_mode = true,
            "--out" => out_path = Some(val("--out")),
            "--table" => table_path = Some(val("--table")),
            "--check-against" => check_path = Some(val("--check-against")),
            "--p" => ps = parse_usize_list(&val("--p")),
            "--workers" => {
                workers = val("--workers").parse().unwrap_or_else(|_| panic!("bad --workers"))
            }
            "--refit-rounds" => {
                refit_rounds =
                    val("--refit-rounds").parse().unwrap_or_else(|_| panic!("bad --refit-rounds"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Measured grid: smoke keeps one tiny world with two block scales so the
    // verify.sh stage finishes in seconds; the full run adds larger worlds.
    let (grid_ps, grid_ns): (Vec<usize>, Vec<usize>) =
        if smoke_mode { (vec![8], vec![4, 64]) } else { (ps, vec![4, 64, 512]) };
    let cand = candidates();
    let measure_dist = Distribution::Uniform;

    println!(
        "bruck-tune — event runtime, {workers} workers, P = {grid_ps:?}, n = {grid_ns:?}, \
         {} candidate configs{}",
        cand.len(),
        if smoke_mode { " (smoke)" } else { "" }
    );
    println!("{:>42} {:>6} {:>6} | {:>9} {:>10} {:>12}", "config", "P", "n", "wall s", "messages", "msgs/s");

    let mut tuner = AutoTuner::new(MachineModel::theta_like());
    let mut cells: Vec<Cell> = Vec::new();
    for &p in &grid_ps {
        for &n_cap in &grid_ns {
            let m = SizeMatrix::generate(measure_dist, 2024 + (p * 31 + n_cap) as u64, p, n_cap);
            let n_max = m.global_max();
            for cfg in &cand {
                let cell = run_cell(cfg, &m, n_cap, workers);
                println!(
                    "{:>42} {:>6} {:>6} | {:>9.4} {:>10} {:>12.0}",
                    cell.config, p, n_cap, cell.wall_s, cell.messages, cell.msgs_per_s()
                );
                // Named points calibrate the machine model; off-point
                // configs are measured for the artifact only.
                if let Some((_, model_algo)) = CALIBRATION_PAIRS
                    .iter()
                    .find(|(a, _)| cfg.as_algorithm() == Some(*a))
                {
                    tuner.observe(p, n_max, *model_algo, cell.wall_s);
                }
                cells.push(cell);
            }
        }
    }

    // Refit the α–β parameters on every observation, then select winners
    // across a key grid that extrapolates well past the measured worlds —
    // that extrapolation is the point of fitting a model at all.
    let fit_log_mse = tuner.refit(measure_dist, 1, refit_rounds);
    println!(
        "refit: {} observations, mean squared log error {fit_log_mse:.4}",
        tuner.observations()
    );

    let mut table = TuningTable::default();
    let select_ps = [8usize, 64, 512, 4096, 32768];
    let select_dists =
        [Distribution::Uniform, Distribution::Normal, Distribution::POWER_LAW_STEEP];
    println!("selections (predicted at n_max = {SELECT_N_MAX}):");
    for &p in &select_ps {
        for dist in select_dists {
            let entry = tuner.tune(&cand, p, SELECT_N_MAX, dist);
            println!(
                "  p={:<6} dist={:<14} -> {} ({:.3e} s)",
                p,
                entry.key.dist,
                entry.config.key(),
                entry.predicted_s
            );
            table.insert(entry);
        }
    }

    let mut failed = false;
    if let Some(path) = &check_path {
        match std::fs::read_to_string(path) {
            Ok(baseline) => {
                println!(
                    "regression check vs {path} (advisory > {ADVISORY_SLOWDOWN}x, fatal > \
                     {FATAL_SLOWDOWN}x):"
                );
                let fatal = check_against(&baseline, &cells);
                if fatal > 0 {
                    eprintln!("FAIL: {fatal} cell(s) regressed more than {FATAL_SLOWDOWN}x");
                    failed = true;
                }
            }
            Err(e) => {
                // A missing baseline is not a regression (first run on a
                // fresh branch); a present-but-unreadable one is.
                if path == "BENCH_PR9.json" && !Path::new(path).exists() {
                    println!("no baseline at {path}; skipping regression check");
                } else {
                    eprintln!("cannot read baseline {path}: {e}");
                    failed = true;
                }
            }
        }
    }

    if let Some(path) = &table_path {
        // Round-trip before writing: serialize → parse → compare, so a
        // malformed table can never land on disk.
        let text = table.serialize();
        let (reparsed, warnings) = TuningTable::parse(&text)
            .unwrap_or_else(|e| panic!("serialized table failed to re-parse: {e}"));
        assert!(warnings.is_empty(), "serialized table produced warnings: {warnings:?}");
        assert_eq!(reparsed, table, "tuning table round-trip mismatch");
        if let Err(e) = write_text(Path::new(path), &text) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} entries)", table.entries.len());
    }

    if let Some(path) = &out_path {
        if let Err(e) =
            write_text(Path::new(path), &artifact_json(workers, fit_log_mse, &table, &cells))
        {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// ≤ 2× CPU count, the bounded-pool bar the runtime is specified against.
fn bounded_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get() * 2).unwrap_or(2).clamp(1, 64)
}
