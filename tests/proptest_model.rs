//! Property tests for the cost model: conservation and symmetry invariants
//! of the trace generators over randomized size matrices.
//!
//! Seeded-random (SplitMix64) rather than `proptest`-driven: the workspace
//! builds hermetically with zero external crates, so each property runs a
//! fixed number of deterministic random cases instead of shrinking searches.

use bruck_model::{nonuniform_trace, MatrixSource, NonuniformAlgo, RankSample, StepKind};
use bruck_workload::{SizeMatrix, SplitMix64};

const CASES: u64 = 24;

fn random_matrix(rng: &mut SplitMix64) -> SizeMatrix {
    let p = rng.next_range(2, 14) as usize;
    let rows: Vec<Vec<usize>> =
        (0..p).map(|_| (0..p).map(|_| rng.next_usize(500)).collect()).collect();
    SizeMatrix::from_rows(rows)
}

/// Within every wire step, global bytes-out equals global bytes-in
/// (every byte sent is received by some covered rank).
#[test]
fn per_step_flow_conservation() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF10C ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        for algo in NonuniformAlgo::ALL {
            let trace = nonuniform_trace(algo, &src, &RankSample::all(p));
            for step in &trace.steps {
                if step.kind.tag().is_none() {
                    continue;
                }
                let out: u64 = step.loads.iter().map(|(_, l)| l.bytes_out).sum();
                let inb: u64 = step.loads.iter().map(|(_, l)| l.bytes_in).sum();
                assert_eq!(out, inb, "case {case}: {} step {:?}", algo.name(), step.kind);
            }
        }
    }
}

/// Bruck-family data steps conserve total payload: each block crosses the
/// wire once per set bit (binary) of its offset; the padded variants move
/// exactly count·N per step.
#[test]
fn two_phase_payload_matches_popcount_routing() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x2BA5 ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        let trace = nonuniform_trace(NonuniformAlgo::TwoPhaseBruck, &src, &RankSample::all(p));
        let data: u64 = trace
            .steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Data(_)))
            .flat_map(|s| s.loads.iter().map(|(_, l)| l.bytes_out))
            .sum();
        let mut expect = 0u64;
        for s in 0..p {
            for d in 0..p {
                let offset = (s + p - d) % p;
                expect += (m.get(s, d) as u64) * u64::from(offset.count_ones());
            }
        }
        assert_eq!(data, expect, "case {case}");
    }
}

/// The spread-out trace moves exactly the matrix, minus self blocks.
#[test]
fn spread_out_moves_exactly_the_matrix() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x59E4 ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        let trace = nonuniform_trace(NonuniformAlgo::Vendor, &src, &RankSample::all(p));
        let wire = trace.total_wire_bytes();
        let expect: u64 = (0..p)
            .flat_map(|s| (0..p).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d)
            .map(|(s, d)| m.get(s, d) as u64)
            .sum();
        assert_eq!(wire, expect, "case {case}");
    }
}

/// §4 regime boundary, message-count form: per-rank wire message counts are
/// 2·⌈log₂P⌉ for two-phase vs P−1 for spread-out *whatever the matrix looks
/// like* — density shifts bytes, never message counts — so the count
/// crossover sits purely in P (log vs linear), exactly where the paper puts
/// the latency-dominated regime.
#[test]
fn message_count_crossover_is_density_independent() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xAB31 ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        let sample = RankSample::all(p);
        let two = nonuniform_trace(NonuniformAlgo::TwoPhaseBruck, &src, &sample);
        let spread = nonuniform_trace(NonuniformAlgo::SpreadOut, &src, &sample);
        let logp = u64::from(bruck_core::common::ceil_log2(p));
        for rank in 0..p {
            let msgs = |t: &bruck_model::CommTrace| -> u64 {
                t.wire_tags().iter().map(|&tag| t.msgs_for_tag(rank, tag).unwrap()).sum()
            };
            assert_eq!(msgs(&two), 2 * logp, "case {case} rank {rank}: meta + data per step");
            assert_eq!(msgs(&spread), p as u64 - 1, "case {case} rank {rank}");
        }
    }
}

/// §4 regime boundary, cost form: along an N sweep the closed-form winner
/// between two-phase and spread-out flips exactly once — two-phase below,
/// spread-out above — at the analytic crossover
/// `N* = 2(α(P−1−2L) − 4βLB) / (β(LB − (P−1)))` with `L = ⌈log₂P⌉`,
/// `B = (P+1)/2` (equate equations (2) and the linear baseline of §3.3).
#[test]
fn cost_crossover_matches_the_analytic_boundary() {
    use bruck_core::{spread_out_cost, two_phase_bruck_cost, CostParams};
    let params = CostParams::default();
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x4B0D ^ case);
        let p = rng.next_range(8, 4096) as usize;
        let l = f64::from(bruck_core::common::ceil_log2(p));
        let b = (p as f64 + 1.0) / 2.0;
        let num = params.alpha * (p as f64 - 1.0 - 2.0 * l) - 4.0 * params.beta * l * b;
        let den = params.beta * (l * b - (p as f64 - 1.0));
        assert!(num > 0.0 && den > 0.0, "case {case} p={p}: crossover must exist");
        let n_star = 2.0 * num / den;
        for e in 0..=24u32 {
            let n = 1usize << e;
            let two_wins = two_phase_bruck_cost(p, n, &params) < spread_out_cost(p, n, &params);
            if (n as f64) < 0.99 * n_star {
                assert!(two_wins, "case {case} p={p} n={n}: below N*={n_star:.0}");
            } else if (n as f64) > 1.01 * n_star {
                assert!(!two_wins, "case {case} p={p} n={n}: above N*={n_star:.0}");
            }
        }
    }
}

/// Time predictions are finite, non-negative, and monotone in the
/// machine's beta.
#[test]
fn predictions_are_sane() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5A9E ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        let fast = bruck_model::MachineModel::theta_like();
        let mut slow = fast.clone();
        slow.beta *= 4.0;
        slow.beta_pair *= 4.0;
        for algo in NonuniformAlgo::ALL {
            let trace = nonuniform_trace(algo, &src, &RankSample::all(p));
            let tf = trace.time(&fast);
            let ts = trace.time(&slow);
            assert!(tf.is_finite() && tf >= 0.0);
            assert!(ts >= tf, "case {case}: {}: slower beta must not be faster", algo.name());
        }
    }
}
