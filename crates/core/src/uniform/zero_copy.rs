//! Zero-copy Bruck (§2.1, after Träff et al. [39]), datatype-only.
//!
//! Modified Bruck copies each received block back into the working buffer at
//! the end of every step. Zero-copy avoids that local copy by *alternating*
//! between the working buffer `R` and a temporary buffer `T`: a block's
//! remaining participation count determines which buffer it currently lives
//! in, arranged so its final receive always lands in `R`.
//!
//! Real MPI implements this with `MPI_Type_create_struct` over absolute
//! addresses spanning both buffers. We model that by carving `R` and `T` out
//! of one allocation and describing each step's send/receive sets as
//! [`IndexedBlocks`] layouts over it — which is also why this variant pays the
//! datatype engine's bookkeeping on every step and, as the paper's Figure 2
//! observes, ends up the slowest variant for small blocks.

use bruck_comm::{CommResult, Communicator, MsgBuf};
use bruck_datatype::IndexedBlocks;

use super::validate_uniform;
use crate::common::{add_mod, ceil_log2, step_rel_indices, sub_mod, uniform_step_tag};
use crate::probe::span;

/// Where a block with relative index `i` must live *before* its step-`k`
/// send so that its last receive lands in `R`: in `R` iff the number of its
/// remaining participations after step `k` is odd.
#[inline]
fn sends_from_r(i: usize, k: u32) -> bool {
    (i >> (k + 1)).count_ones() % 2 == 1
}

/// Initial placement: `R` iff the block's total participation count is even
/// (so the alternation ends in `R`).
#[inline]
fn starts_in_r(i: usize) -> bool {
    i.count_ones().is_multiple_of(2)
}

/// Zero-copy Bruck (`ZeroCopyBruck-dt` in Figure 2).
pub fn zero_copy_bruck_dt<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();

    // One allocation, two logical halves: R = w[0..P*block], T = the rest.
    // Displacements in a layout can then address either half, standing in
    // for MPI's absolute-address struct types.
    let t_base = p * block;
    let mut w = vec![0u8; 2 * p * block];

    // Re-aimed initial rotation, split by participation parity.
    let rotate_probe = span("zero_copy.rotate");
    for abs in 0..p {
        let src = ((2 * me + p) - abs) % p * block;
        let rel = sub_mod(abs, me, p);
        let base = if starts_in_r(rel) { 0 } else { t_base };
        w[base + abs * block..base + (abs + 1) * block].copy_from_slice(&sendbuf[src..src + block]);
    }

    drop(rotate_probe);
    for k in 0..ceil_log2(p) {
        let _probe = span("zero_copy.step");
        let hop = 1usize << k;
        let dest = sub_mod(me, hop, p);
        let src = add_mod(me, hop, p);
        // Send layout: blocks drawn from whichever half currently holds them;
        // receive layout: the opposite half (that's the whole trick — the
        // receive of step k is the send buffer of the block's next step).
        let mut send_blocks = Vec::new();
        let mut recv_blocks = Vec::new();
        for i in step_rel_indices(p, k) {
            let abs = add_mod(i, me, p);
            let (send_base, recv_base) =
                if sends_from_r(i, k) { (0, t_base) } else { (t_base, 0) };
            send_blocks.push((send_base + abs * block, block));
            recv_blocks.push((recv_base + abs * block, block));
        }
        let send_layout = IndexedBlocks::new(send_blocks).expect("in-bounds send layout");
        let recv_layout = IndexedBlocks::new(recv_blocks).expect("in-bounds recv layout");
        let mut wire = vec![0u8; send_layout.packed_len()];
        send_layout.pack_into(&w, &mut wire).expect("pack step blocks");
        let got = comm.sendrecv_buf(
            dest,
            uniform_step_tag(k),
            MsgBuf::from_vec(wire),
            src,
            uniform_step_tag(k),
        )?;
        recv_layout.unpack_from(&got, &mut w).expect("unpack step blocks");
    }

    // Every block's final receive (and the never-sent self block) lands in R.
    recvbuf.copy_from_slice(&w[..t_base]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallAlgorithm;
    use super::*;

    #[test]
    fn zero_copy_correct_for_all_sizes() {
        for p in TEST_SIZES {
            run_and_check(AlltoallAlgorithm::ZeroCopyBruckDt, p, 3);
        }
    }

    #[test]
    fn buffer_parity_rules_are_consistent() {
        // The receive buffer of a block's step k must equal the send buffer
        // of its next participating step k' — otherwise data would be read
        // from the wrong half.
        for i in 1usize..64 {
            let steps: Vec<u32> = (0..7).filter(|&k| i & (1 << k) != 0).collect();
            // First send comes from where the block was initially placed.
            assert_eq!(
                sends_from_r(i, steps[0]),
                starts_in_r(i),
                "initial placement vs first send for rel {i}"
            );
            for pair in steps.windows(2) {
                let recv_into_r_at_k = !sends_from_r(i, pair[0]);
                let send_from_r_at_next = sends_from_r(i, pair[1]);
                assert_eq!(recv_into_r_at_k, send_from_r_at_next, "rel {i} steps {pair:?}");
            }
            // Final receive must land in R.
            assert!(
                !sends_from_r(i, *steps.last().unwrap()),
                "rel {i}: last send must come from T so the receive lands in R"
            );
        }
    }

    #[test]
    fn larger_power_of_two() {
        run_and_check(AlltoallAlgorithm::ZeroCopyBruckDt, 32, 8);
    }
}
