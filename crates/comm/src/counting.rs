//! [`CountingComm`]: a transparent instrumentation wrapper.
//!
//! Wraps any [`Communicator`] and records, per rank, every outgoing message
//! (destination, tag, byte length, in send order). This is the bridge between
//! the real implementations in `bruck-core` and the cost model in
//! `bruck-model`: integration tests run an algorithm under `CountingComm` and
//! assert that the model's communication trace predicts exactly the bytes the
//! real code moved.
//!
//! It also audits the **copy discipline** of the zero-copy transport: a send
//! that goes through the compat `&[u8]` path packs its payload into a fresh
//! region (one allocation + one copy), while a [`Communicator::send_buf`]
//! send hands over a shared view (neither). Each [`SentRecord`] carries which
//! path it took, and [`CountingComm::copy_stats`] aggregates the totals, so
//! tests can *prove* an algorithm's data phase does zero per-message copies.

use std::sync::Mutex;

use crate::{CommResult, Communicator, MsgBuf, RecvReq, Tag};

/// One recorded outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentRecord {
    /// Destination rank.
    pub dest: usize,
    /// Message tag (the Bruck algorithms tag data with the step index, so a
    /// trace can be grouped per communication step).
    pub tag: Tag,
    /// Payload bytes.
    pub len: usize,
    /// Whether this send packed its payload through the compat `&[u8]` path
    /// (true: one allocation + one copy) or handed over a [`MsgBuf`] view
    /// (false: zero-copy).
    pub copied: bool,
}

/// Aggregate statistics over a recorded message log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Total messages sent by this rank.
    pub messages: usize,
    /// Total payload bytes sent by this rank.
    pub bytes: usize,
}

/// Copy-discipline totals over a recorded message log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Sends that packed through the compat path (one allocation each).
    pub copied_sends: usize,
    /// Payload bytes copied by compat-path sends.
    pub bytes_copied: usize,
    /// Sends that handed over a shared view (zero-copy).
    pub zero_copy_sends: usize,
}

/// Instrumented view over an inner communicator.
///
/// Only *sends* are recorded: in a closed SPMD region every receive pairs
/// with some rank's send, so send logs fully determine traffic.
pub struct CountingComm<'a, C: Communicator + ?Sized> {
    inner: &'a C,
    log: Mutex<Vec<SentRecord>>,
}

impl<'a, C: Communicator + ?Sized> CountingComm<'a, C> {
    /// Wrap `inner`, starting with an empty log.
    pub fn new(inner: &'a C) -> Self {
        CountingComm { inner, log: Mutex::new(Vec::new()) }
    }

    fn record(&self, rec: SentRecord) {
        self.log.lock().expect("log lock").push(rec);
    }

    /// Snapshot of the send log, in send order.
    pub fn log(&self) -> Vec<SentRecord> {
        self.log.lock().expect("log lock").clone()
    }

    /// Clear the log (e.g. between measured iterations).
    pub fn reset(&self) {
        self.log.lock().expect("log lock").clear();
    }

    /// Totals over the current log.
    pub fn stats(&self) -> CommStats {
        let log = self.log.lock().expect("log lock");
        CommStats {
            messages: log.len(),
            bytes: log.iter().map(|r| r.len).sum(),
        }
    }

    /// Totals restricted to one tag (= one algorithm step, by convention).
    pub fn stats_for_tag(&self, tag: Tag) -> CommStats {
        let log = self.log.lock().expect("log lock");
        let mut s = CommStats::default();
        for r in log.iter().filter(|r| r.tag == tag) {
            s.messages += 1;
            s.bytes += r.len;
        }
        s
    }

    /// Copy-discipline totals over the current log.
    pub fn copy_stats(&self) -> CopyStats {
        let log = self.log.lock().expect("log lock");
        let mut s = CopyStats::default();
        for r in log.iter() {
            if r.copied {
                s.copied_sends += 1;
                s.bytes_copied += r.len;
            } else {
                s.zero_copy_sends += 1;
            }
        }
        s
    }

    /// Payload bytes that took the compat (copying) send path.
    pub fn bytes_copied(&self) -> usize {
        self.copy_stats().bytes_copied
    }

    /// Per-message send-side allocations (= compat-path sends; `send_buf`
    /// allocates nothing).
    pub fn send_allocs(&self) -> usize {
        self.copy_stats().copied_sends
    }
}

impl<C: Communicator + ?Sized> Communicator for CountingComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now(&self) -> std::time::Duration {
        self.inner.now()
    }

    fn sleep(&self, d: std::time::Duration) {
        self.inner.sleep(d)
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        let len = buf.len();
        self.inner.send_buf(dest, tag, buf)?;
        self.record(SentRecord { dest, tag, len, copied: false });
        Ok(())
    }

    fn send(&self, dest: usize, tag: Tag, data: &[u8]) -> CommResult<()> {
        // Forward the compat path to the inner compat path (a wrapped
        // communicator may instrument it too); record the pack it implies.
        self.inner.send(dest, tag, data)?;
        self.record(SentRecord { dest, tag, len: data.len(), copied: true });
        Ok(())
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.inner.recv_buf(src, tag)
    }

    fn recv(&self, src: usize, tag: Tag) -> CommResult<Vec<u8>> {
        self.inner.recv(src, tag)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        self.inner.recv_into(src, tag, buf)
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.inner.probe(src, tag)
    }

    fn irecv(&self, src: usize, tag: Tag) -> CommResult<RecvReq> {
        self.inner.irecv(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadComm;

    #[test]
    fn records_sends_with_tags_and_lengths() {
        let logs = ThreadComm::run(2, |comm| {
            let counting = CountingComm::new(comm);
            let peer = 1 - counting.rank();
            counting.send(peer, 1, &[0u8; 10]).unwrap();
            counting.send(peer, 2, &[0u8; 20]).unwrap();
            counting.recv(peer, 1).unwrap();
            counting.recv(peer, 2).unwrap();
            (counting.log(), counting.stats(), counting.stats_for_tag(2))
        });
        for (rank, (log, stats, tag2)) in logs.into_iter().enumerate() {
            assert_eq!(
                log,
                vec![
                    SentRecord { dest: 1 - rank, tag: 1, len: 10, copied: true },
                    SentRecord { dest: 1 - rank, tag: 2, len: 20, copied: true },
                ]
            );
            assert_eq!(stats, CommStats { messages: 2, bytes: 30 });
            assert_eq!(tag2, CommStats { messages: 1, bytes: 20 });
        }
    }

    #[test]
    fn copy_stats_distinguish_the_two_send_paths() {
        ThreadComm::run(1, |comm| {
            let counting = CountingComm::new(comm);
            counting.send(0, 0, &[1, 2, 3]).unwrap(); // compat: one pack copy
            let region = MsgBuf::from_vec(vec![0u8; 100]);
            counting.send_buf(0, 1, region.slice(..40)).unwrap(); // zero-copy
            counting.send_buf(0, 1, region.slice(40..)).unwrap(); // zero-copy
            counting.recv(0, 0).unwrap();
            counting.recv_buf(0, 1).unwrap();
            counting.recv_buf(0, 1).unwrap();
            assert_eq!(
                counting.copy_stats(),
                CopyStats { copied_sends: 1, bytes_copied: 3, zero_copy_sends: 2 }
            );
            assert_eq!(counting.bytes_copied(), 3);
            assert_eq!(counting.send_allocs(), 1);
            assert_eq!(counting.stats(), CommStats { messages: 3, bytes: 103 });
        });
    }

    #[test]
    fn reset_clears_log() {
        ThreadComm::run(1, |comm| {
            let counting = CountingComm::new(comm);
            counting.send(0, 0, &[1, 2, 3]).unwrap();
            counting.recv(0, 0).unwrap();
            assert_eq!(counting.stats().messages, 1);
            counting.reset();
            assert_eq!(counting.stats(), CommStats::default());
            assert_eq!(counting.copy_stats(), CopyStats::default());
        });
    }

    #[test]
    fn collectives_are_counted_through_the_wrapper() {
        let stats = ThreadComm::run(4, |comm| {
            let counting = CountingComm::new(comm);
            counting.barrier().unwrap();
            counting.stats()
        });
        // Dissemination barrier at P=4: log2(4) = 2 rounds, 1 empty message each.
        for s in stats {
            assert_eq!(s.messages, 2);
            assert_eq!(s.bytes, 0);
        }
    }
}
