//! Regression: a real interleaving-order bug, pinned by seed and recorded
//! schedule under the deterministic simulator.
//!
//! The protocol under test is a throttled "spread-out window" collector:
//! rank 0 gathers one block from every peer, opportunistically draining
//! whichever message is already present during a bounded polling window
//! (the moral equivalent of `MPI_Waitany` over posted receives), then
//! blocking on stragglers in rank order. The bug is that it stores blocks
//! *by arrival order* while downstream indexing assumes *rank order* — a
//! wait-order inversion that only manifests when the scheduler happens to
//! deliver a higher rank's send before a lower rank's.
//!
//! Under `ThreadComm` this is a flaky once-a-month CI failure. Under
//! [`SimComm`] it is: a pinned failing seed, a schedule trace that replays
//! the failure from a file, and a delta-debugged minimal schedule.

use std::time::Duration;

use bruck_comm::{shrink_choices, Communicator, ScheduleTrace, SimComm, SimConfig};

const P: usize = 4;
const TAG: u32 = 9;
/// Bounded opportunistic-drain rounds before falling back to blocking
/// receives (the "window" of the throttled spread-out collector).
const POLL_ROUNDS: usize = 3;

/// A schedule-seed whose random interleaving delivers a higher rank's block
/// first, exposing the arrival-order bug. Discovered by the scan in
/// [`some_seed_exposes_the_inversion`]; pinned so the failure replays
/// forever even if the scan's seed range changes.
const PINNED_SEED: u64 = 2;

/// The buggy collector. Every rank returns the order in which rank 0
/// observed the senders (empty for non-collectors); correct behaviour is
/// ascending rank order `[1, 2, .., p-1]`.
fn buggy_window_collect(comm: &SimComm<'_>) -> Vec<u8> {
    let me = comm.rank();
    let p = comm.size();
    if me != 0 {
        comm.send(0, TAG, &[me as u8]).unwrap();
        return Vec::new();
    }
    let mut order = Vec::new();
    let mut seen = vec![false; p];
    // Window phase: drain whatever has already arrived, in poll order.
    for _ in 0..POLL_ROUNDS {
        for src in 1..p {
            if !seen[src] && comm.probe(src, TAG).unwrap().is_some() {
                let msg = comm.recv(src, TAG).unwrap();
                seen[src] = true;
                order.push(msg[0]);
            }
        }
    }
    // Straggler phase: block on whoever has not been heard from yet.
    for src in 1..p {
        if !seen[src] {
            let msg = comm.recv(src, TAG).unwrap();
            order.push(msg[0]);
        }
    }
    order
}

/// Runs the collector replaying `choices` (or from `seed` when `choices` is
/// `None`) and reports rank 0's observed order plus the recorded schedule.
fn run_collector(seed: u64, choices: Option<&[u32]>) -> (Vec<u8>, ScheduleTrace) {
    let cfg = SimConfig {
        seed,
        replay: choices.map(<[u32]>::to_vec),
        meta: "sim_regression window collector".to_string(),
        record_steps: false,
    };
    let report = SimComm::try_run(P, &cfg, buggy_window_collect);
    assert!(report.all_ok(), "collector must not panic: {:?}", report.outcomes);
    let order = report.outcomes.into_iter().next().unwrap().unwrap();
    (order, report.trace)
}

fn expected_order() -> Vec<u8> {
    (1..P as u8).collect()
}

/// The scan that discovered [`PINNED_SEED`]: among a small band of seeds at
/// least one schedule must invert the arrival order. If the scheduler's
/// choice distribution ever changes this locates a fresh failing seed.
#[test]
fn some_seed_exposes_the_inversion() {
    let failing: Vec<u64> =
        (0..32).filter(|&s| run_collector(s, None).0 != expected_order()).collect();
    assert!(
        !failing.is_empty(),
        "no seed in 0..32 exposed the arrival-order inversion; scheduler changed?"
    );
    assert!(
        failing.contains(&PINNED_SEED),
        "pinned seed {PINNED_SEED} no longer fails; re-pin to one of {failing:?}"
    );
}

/// The pinned failure replays byte-identically from a trace file on disk,
/// and the shrinker reduces the schedule to a strictly smaller core of at
/// most 20 scheduling choices that still reproduces the inversion.
#[test]
fn pinned_inversion_replays_from_file_and_shrinks() {
    let (order, trace) = run_collector(PINNED_SEED, None);
    assert_ne!(order, expected_order(), "pinned seed {PINNED_SEED} must fail");

    // Round-trip the schedule through a trace file, as a human debugging a
    // CI failure would (bruck-sim writes the same format).
    let path = std::env::temp_dir()
        .join(format!("bruck-sim-regression-{}.trace", std::process::id()));
    trace.save(&path).unwrap();
    let loaded = ScheduleTrace::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, trace);

    // Replaying the loaded trace reproduces the exact same wrong order and
    // the exact same executed schedule.
    let (replayed_order, replayed_trace) =
        run_collector(loaded.seed, Some(&loaded.choices));
    assert_eq!(replayed_order, order, "replay must reproduce the failure");
    assert_eq!(replayed_trace.choices, trace.choices);

    // Shrink: the failure needs only a handful of early choices (get one
    // higher rank's send in before rank 0's poll); everything after is
    // noise the ddmin pass deletes.
    let min = shrink_choices(&trace.choices, |cand| {
        run_collector(PINNED_SEED, Some(cand)).0 != expected_order()
    });
    assert!(
        min.len() < trace.choices.len(),
        "shrinker must strictly reduce ({} -> {})",
        trace.choices.len(),
        min.len()
    );
    assert!(min.len() <= 20, "minimal schedule too large: {} choices: {min:?}", min.len());
    let (min_order, _) = run_collector(PINNED_SEED, Some(&min));
    assert_ne!(min_order, expected_order(), "shrunk schedule must still fail");
}

/// The fix for the bug above is to index by source rank, not arrival order.
/// The fixed collector passes under every seed the buggy one fails on —
/// pinning the *repair*, not just the failure.
#[test]
fn fixed_collector_is_schedule_independent() {
    for seed in 0..32u64 {
        let run = SimComm::run(P, seed, |comm| {
            let me = comm.rank();
            let p = comm.size();
            if me != 0 {
                comm.send(0, TAG, &[me as u8]).unwrap();
                return Vec::new();
            }
            let mut blocks = vec![0u8; p];
            let mut seen = vec![false; p];
            for _ in 0..POLL_ROUNDS {
                for src in 1..p {
                    if !seen[src] && comm.probe(src, TAG).unwrap().is_some() {
                        // Indexed by src: arrival order no longer matters.
                        blocks[src] = comm.recv(src, TAG).unwrap()[0];
                        seen[src] = true;
                    }
                }
            }
            for src in 1..p {
                if !seen[src] {
                    blocks[src] = comm.recv(src, TAG).unwrap()[0];
                }
            }
            blocks[1..].to_vec()
        });
        assert_eq!(run.results[0], expected_order(), "seed {seed}");
    }
}

/// Virtual time composes with the window collector: a collector that bounds
/// its straggler phase with `recv_timeout` sees the timeout fire at exactly
/// the budget when a peer never sends — instantly in wall time.
#[test]
fn timed_straggler_phase_times_out_at_exactly_the_budget()
{
    let budget = Duration::from_secs(30);
    let wall = std::time::Instant::now();
    let run = SimComm::run(2, 7, move |comm| {
        if comm.rank() != 0 {
            return None;
        }
        // Rank 1 never sends: the straggler wait must consume the whole
        // virtual budget and not a nanosecond more.
        match comm.recv_timeout(1, TAG, budget) {
            Err(bruck_comm::CommError::Timeout { waited, .. }) => Some(waited),
            other => panic!("expected timeout, got {other:?}"),
        }
    });
    assert_eq!(run.results[0], Some(budget), "virtual wait must equal the budget exactly");
    assert!(wall.elapsed() < budget, "a 30s virtual timeout must not take 30s of wall time");
}
