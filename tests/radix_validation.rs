//! Radix-r extension: real implementations vs. model traces, byte-exact,
//! plus schedule agreement between `bruck-core` and `bruck-model`.

use bruck_comm::{Communicator, CountingComm, SentRecord, ThreadComm};
use bruck_core::{packed_displs, two_phase_bruck_radix, zero_rotation_bruck_radix};
use bruck_model::{
    radix_trace_schedule, two_phase_radix_trace, zero_rotation_radix_trace, MatrixSource,
    RankSample,
};
use bruck_workload::{Distribution, SizeMatrix};

#[test]
fn core_and_model_radix_schedules_agree() {
    for p in [2usize, 5, 16, 27, 100] {
        for radix in [2usize, 3, 4, 8] {
            assert_eq!(
                bruck_core::radix_schedule(p, radix),
                radix_trace_schedule(p, radix),
                "p={p} radix={radix}"
            );
        }
    }
}

fn logged_bytes(log: &[SentRecord], tag: u32) -> u64 {
    log.iter().filter(|r| r.tag == tag).map(|r| r.len as u64).sum()
}

#[test]
fn radix_two_phase_traces_predict_wire_bytes_exactly() {
    for radix in [2usize, 3, 4, 8] {
        for p in [4usize, 9, 12, 16] {
            let m = SizeMatrix::generate(Distribution::Uniform, radix as u64 * 97, p, 64);
            let trace = two_phase_radix_trace(&MatrixSource(&m), radix, &RankSample::all(p));
            let logs: Vec<Vec<SentRecord>> = ThreadComm::run(p, |comm| {
                let counting = CountingComm::new(comm);
                let me = counting.rank();
                let sendcounts = m.sendcounts(me);
                let sdispls = packed_displs(&sendcounts);
                let sendbuf = vec![7u8; sendcounts.iter().sum()];
                let recvcounts = m.recvcounts(me);
                let rdispls = packed_displs(&recvcounts);
                let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
                two_phase_bruck_radix(
                    &counting, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                    &rdispls, radix,
                )
                .unwrap();
                counting.log()
            });
            for (rank, log) in logs.iter().enumerate() {
                for tag in trace.wire_tags() {
                    assert_eq!(
                        trace.bytes_for_tag(rank, tag),
                        Some(logged_bytes(log, tag)),
                        "radix {radix}, P={p}, rank {rank}, tag {tag:#x}"
                    );
                }
            }
        }
    }
}

#[test]
fn radix_uniform_traces_predict_wire_bytes_exactly() {
    for radix in [2usize, 3, 5] {
        for p in [4usize, 7, 16] {
            let n = 16;
            let trace = zero_rotation_radix_trace(p, n, radix, &RankSample::all(p));
            let logs: Vec<Vec<SentRecord>> = ThreadComm::run(p, |comm| {
                let counting = CountingComm::new(comm);
                let sendbuf = vec![1u8; p * n];
                let mut recvbuf = vec![0u8; p * n];
                zero_rotation_bruck_radix(&counting, &sendbuf, &mut recvbuf, n, radix).unwrap();
                counting.log()
            });
            for (rank, log) in logs.iter().enumerate() {
                for tag in trace.wire_tags() {
                    assert_eq!(
                        trace.bytes_for_tag(rank, tag),
                        Some(logged_bytes(log, tag)),
                        "radix {radix}, P={p}, rank {rank}, tag {tag:#x}"
                    );
                }
            }
        }
    }
}

#[test]
fn radix_output_equals_binary_output() {
    // All radices compute the same exchange as the binary implementation.
    let p = 12;
    let m = SizeMatrix::generate(Distribution::Normal, 11, p, 80);
    let run = |radix: usize| -> Vec<Vec<u8>> {
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let sendcounts = m.sendcounts(me);
            let sdispls = packed_displs(&sendcounts);
            let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
            for (i, b) in sendbuf.iter_mut().enumerate() {
                *b = (me * 37 + i) as u8;
            }
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            two_phase_bruck_radix(
                comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls, radix,
            )
            .unwrap();
            recvbuf
        })
    };
    let expect = run(2);
    for radix in [3usize, 4, 6, 12] {
        assert_eq!(run(radix), expect, "radix {radix}");
    }
}
