//! Property tests for the derived-datatype layout engine.

use bruck_datatype::IndexedBlocks;
use proptest::prelude::*;

/// Generate non-overlapping, in-bounds blocks over a buffer of `buf_len`
/// bytes, then shuffle their order (layouts need not be monotone).
fn blocks_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1usize..256).prop_flat_map(|buf_len| {
        let max_blocks = 8usize;
        (
            Just(buf_len),
            prop::collection::vec((0usize..buf_len, 0usize..32), 0..max_blocks),
        )
            .prop_map(|(buf_len, raw)| {
                // Clip lengths to stay in bounds; overlap is allowed for
                // packing (gather) but NOT for unpacking, so we keep two
                // variants in the tests below.
                let blocks: Vec<(usize, usize)> =
                    raw.into_iter().map(|(d, l)| (d, l.min(buf_len - d))).collect();
                (buf_len, blocks)
            })
    })
}

/// Non-overlapping blocks: carve the buffer into disjoint chunks.
fn disjoint_blocks_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1usize..256, prop::collection::vec(1usize..16, 0..10), any::<u64>()).prop_map(
        |(gap_seed, lens, shuffle_seed)| {
            let mut blocks = Vec::new();
            let mut at = gap_seed % 3;
            for (i, len) in lens.iter().enumerate() {
                blocks.push((at, *len));
                at += len + (i % 3); // small gaps between blocks
            }
            // Deterministic pseudo-shuffle so sequence order != address order.
            let n = blocks.len();
            if n > 1 {
                for i in 0..n {
                    let j = (shuffle_seed as usize).wrapping_mul(31).wrapping_add(i * 17) % n;
                    blocks.swap(i, j);
                }
            }
            (at.max(1), blocks)
        },
    )
}

proptest! {
    /// pack never reads outside the buffer and produces exactly packed_len bytes.
    #[test]
    fn pack_len_is_packed_len((buf_len, blocks) in blocks_strategy()) {
        let ty = IndexedBlocks::new(blocks).unwrap();
        prop_assume!(ty.extent() <= buf_len);
        let src: Vec<u8> = (0..buf_len).map(|i| i as u8).collect();
        let packed = ty.pack(&src).unwrap();
        prop_assert_eq!(packed.len(), ty.packed_len());
    }

    /// pack followed by unpack restores exactly the described bytes.
    #[test]
    fn pack_unpack_roundtrip((buf_len, blocks) in disjoint_blocks_strategy()) {
        let ty = IndexedBlocks::new(blocks).unwrap();
        let buf_len = buf_len.max(ty.extent());
        let src: Vec<u8> = (0..buf_len).map(|i| (i * 7 + 3) as u8).collect();
        let packed = ty.pack(&src).unwrap();
        let mut dst = vec![0u8; buf_len];
        ty.unpack_from(&packed, &mut dst).unwrap();
        // Described bytes must match the source...
        for &(d, l) in ty.blocks() {
            prop_assert_eq!(&dst[d..d + l], &src[d..d + l]);
        }
        // ...and re-packing the unpacked buffer is a fixed point.
        prop_assert_eq!(ty.pack(&dst).unwrap(), packed);
    }

    /// Packed size equals the sum of block lengths; extent equals the max end.
    #[test]
    fn size_and_extent_invariants((_buf_len, blocks) in blocks_strategy()) {
        let ty = IndexedBlocks::new(blocks.clone()).unwrap();
        let sum: usize = blocks.iter().map(|&(_, l)| l).sum();
        let extent = blocks.iter().map(|&(d, l)| d + l).max().unwrap_or(0);
        prop_assert_eq!(ty.packed_len(), sum);
        prop_assert_eq!(ty.extent(), extent);
    }

    /// from_lengths_displs agrees with new() on zipped inputs.
    #[test]
    fn constructors_agree(lens in prop::collection::vec(0usize..32, 0..8)) {
        let displs: Vec<usize> = lens.iter().scan(0, |acc, &l| {
            let d = *acc;
            *acc += l + 1;
            Some(d)
        }).collect();
        let a = IndexedBlocks::from_lengths_displs(&lens, &displs).unwrap();
        let b = IndexedBlocks::new(displs.into_iter().zip(lens).collect()).unwrap();
        prop_assert_eq!(a, b);
    }
}
