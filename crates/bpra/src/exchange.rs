//! Tuple redistribution: one non-uniform all-to-all per fixpoint iteration.

use std::time::{Duration, Instant};

use bruck_comm::{CommResult, Communicator, ReduceOp};
use bruck_core::{alltoallv, packed_displs, AlltoallvAlgorithm};

use crate::{decode_all, encode_into, Tuple};

/// Instrumentation for one exchange (the data behind Figure 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Global maximum block size this iteration (bytes) — the paper's `N`.
    pub n_max: usize,
    /// Bytes this rank sent (all destinations, including self block).
    pub bytes_sent: usize,
    /// Tuples this rank received.
    pub tuples_received: usize,
    /// Wall-clock time of the all-to-all (counts handshake + data exchange).
    pub comm_time: Duration,
}

/// Route every tuple in `outboxes[dst]` to rank `dst` using the chosen
/// `alltoallv` algorithm; returns the tuples received and the exchange stats.
///
/// This is the single communication primitive of every BPRA application: the
/// paper swaps `MPI_Alltoallv` for two-phase Bruck here and nowhere else
/// (§5: "this step was simple as our algorithm has the same function
/// signature as MPI_Alltoallv").
pub fn exchange_tuples<C: Communicator + ?Sized>(
    comm: &C,
    algo: AlltoallvAlgorithm,
    outboxes: &[Vec<Tuple>],
) -> CommResult<(Vec<Tuple>, ExchangeStats)> {
    let p = comm.size();
    assert_eq!(outboxes.len(), p, "one outbox per rank");

    // Encode every outbox straight into the single packed send region — no
    // per-destination staging buffer; the alltoallv below sends views of it.
    let sendcounts: Vec<usize> = outboxes.iter().map(|b| b.len() * crate::TUPLE_BYTES).collect();
    let sdispls = packed_displs(&sendcounts);
    let mut sendbuf = Vec::with_capacity(sendcounts.iter().sum());
    for b in outboxes {
        for &t in b {
            encode_into(t, &mut sendbuf);
        }
    }

    // Instrumentation: the iteration's global maximum block size (the paper
    // plots this as N per iteration in Figure 12).
    let local_max = sendcounts.iter().copied().max().unwrap_or(0);
    let n_max = comm.allreduce_u64(local_max as u64, ReduceOp::Max)? as usize;

    let start = Instant::now();
    let recvcounts = comm.alltoall_counts(&sendcounts)?;
    let rdispls = packed_displs(&recvcounts);
    let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
    alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)?;
    let comm_time = start.elapsed();

    let received = decode_all(&recvbuf);
    let stats = ExchangeStats {
        n_max,
        bytes_sent: sendbuf.len(),
        tuples_received: received.len(),
        comm_time,
    };
    Ok((received, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_comm::ThreadComm;
    use crate::owner;

    #[test]
    fn exchange_routes_tuples_to_their_destination() {
        let p = 6;
        for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
            let results = ThreadComm::run(p, |comm| {
                let me = comm.rank() as u64;
                // Send (me, dst) to each dst, and two tuples to dst 0.
                let mut outboxes: Vec<Vec<Tuple>> = vec![Vec::new(); p];
                for (dst, outbox) in outboxes.iter_mut().enumerate() {
                    outbox.push((me, dst as u64));
                }
                outboxes[0].push((me, 999));
                let (got, stats) = exchange_tuples(comm, algo, &outboxes).unwrap();
                assert_eq!(stats.bytes_sent, (p + 1) * crate::TUPLE_BYTES);
                (comm.rank(), got, stats)
            });
            for (rank, mut got, stats) in results {
                got.sort_unstable();
                let mut expect: Vec<Tuple> = (0..p as u64).map(|s| (s, rank as u64)).collect();
                if rank == 0 {
                    expect.extend((0..p as u64).map(|s| (s, 999)));
                }
                expect.sort_unstable();
                assert_eq!(got, expect, "algo {algo:?} rank {rank}");
                assert_eq!(stats.tuples_received, expect.len());
                // Rank 0 receives 2 tuples per source: N = 32 bytes.
                assert_eq!(stats.n_max, 2 * crate::TUPLE_BYTES);
            }
        }
    }

    #[test]
    fn empty_exchange_works() {
        ThreadComm::run(4, |comm| {
            let outboxes = vec![Vec::new(); 4];
            let (got, stats) =
                exchange_tuples(comm, AlltoallvAlgorithm::TwoPhaseBruck, &outboxes).unwrap();
            assert!(got.is_empty());
            assert_eq!(stats.n_max, 0);
        });
    }

    #[test]
    fn hash_partitioned_tuples_land_at_their_owner() {
        let p = 5;
        let results = ThreadComm::run(p, |comm| {
            let me = comm.rank() as u64;
            let mut outboxes = vec![Vec::new(); p];
            // Each rank generates 50 tuples and routes by owner of the key.
            for i in 0..50u64 {
                let t = (me * 1000 + i, i);
                outboxes[owner(t.1, p)].push(t);
            }
            let (got, _) = exchange_tuples(comm, AlltoallvAlgorithm::TwoPhaseBruck, &outboxes)
                .unwrap();
            (comm.rank(), got)
        });
        for (rank, got) in results {
            assert!(got.iter().all(|t| owner(t.1, p) == rank));
        }
    }
}
