//! [`MsgBuf`]: the reference-counted message payload behind the zero-copy
//! transport path.
//!
//! A `MsgBuf` is a cheap view (`{Arc<Vec<u8>>, start, len}`) of a shared,
//! immutable byte region — the std-only equivalent of `bytes::Bytes`. Cloning
//! or [`slicing`](MsgBuf::slice) a `MsgBuf` bumps a reference count and never
//! touches the payload, which is what lets one packed send region feed `P`
//! outgoing messages with zero per-message allocation or copy.
//!
//! ## Ownership model
//!
//! * The backing region is **immutable** once wrapped: a `MsgBuf` hands out
//!   `&[u8]` only. Producers build a `Vec<u8>`, then convert it with
//!   [`MsgBuf::from_vec`] (free — the `Vec` is moved behind the `Arc`, not
//!   copied).
//! * [`MsgBuf::slice`] produces disjoint or overlapping sub-views that all
//!   share the same backing region. A send hands its view to the runtime;
//!   the region is freed when the last view (sender-side or queued in a
//!   mailbox) drops.
//! * [`MsgBuf::into_vec`] recovers an owned `Vec<u8>`: free when this view is
//!   the sole owner of the whole region (the common receive path), a single
//!   copy otherwise.
//!
//! The only *intentional* copy on the zero-copy path is the initial pack into
//! the region; [`crate::CountingComm`] counts every other copy so tests can
//! assert there are none.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheap, clonable, immutable slice of a reference-counted byte region.
///
/// See the [module docs](self) for the ownership model.
#[derive(Clone)]
pub struct MsgBuf {
    /// `Arc<Vec<u8>>` rather than `Arc<[u8]>`: converting a `Vec` into an
    /// `Arc<[u8]>` copies the payload into a fresh allocation, while
    /// `Arc::new(vec)` just moves the (pointer, len, cap) triple.
    data: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl MsgBuf {
    /// An empty message. Shares one static region: repeated calls (barriers
    /// send millions of empty messages) allocate nothing after the first.
    pub fn new() -> Self {
        static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
        let data = Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())));
        MsgBuf { data, start: 0, len: 0 }
    }

    /// Wrap an owned `Vec` without copying it.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        MsgBuf { data: Arc::new(v), start: 0, len }
    }

    /// Copy a borrowed slice into a fresh region (the compat-path pack).
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from_vec(s.to_vec())
    }

    /// A sub-view of this view. Shares the backing region: no allocation, no
    /// copy. Accepts any range syntax (`a..b`, `a..`, `..b`, `..`).
    ///
    /// # Panics
    /// If the range is out of bounds of *this view* (not the whole region).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(lo <= hi && hi <= self.len, "slice {lo}..{hi} out of bounds of view of len {}", self.len);
        MsgBuf { data: Arc::clone(&self.data), start: self.start + lo, len: hi - lo }
    }

    /// Byte length of this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// Recover an owned `Vec<u8>`.
    ///
    /// Free (pointer steal) when this view is the unique owner of the whole
    /// region — the common case for a just-received whole message. Otherwise
    /// one copy of this view's bytes.
    pub fn into_vec(self) -> Vec<u8> {
        if self.start == 0 && self.len == self.data.len() {
            match Arc::try_unwrap(self.data) {
                Ok(v) => return v,
                Err(shared) => return shared[..self.len].to_vec(),
            }
        }
        self.as_slice().to_vec()
    }

    /// Number of live views of the backing region (diagnostics/tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl Default for MsgBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for MsgBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for MsgBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for MsgBuf {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for MsgBuf {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl std::fmt::Debug for MsgBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgBuf")
            .field("start", &self.start)
            .field("len", &self.len)
            .field("region", &self.data.len())
            .finish()
    }
}

impl PartialEq for MsgBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for MsgBuf {}

impl PartialEq<[u8]> for MsgBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for MsgBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_does_not_copy() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let b = MsgBuf::from_vec(v);
        assert_eq!(b.as_slice().as_ptr(), ptr, "from_vec must move, not copy");
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr, "unique into_vec must steal the region");
    }

    #[test]
    fn slices_share_the_region() {
        let b = MsgBuf::from_vec((0u8..32).collect());
        let lo = b.slice(..16);
        let hi = b.slice(16..);
        assert_eq!(lo.len(), 16);
        assert_eq!(&hi[..4], &[16, 17, 18, 19]);
        assert_eq!(b.ref_count(), 3);
        // Sub-slicing composes: offsets are relative to the view.
        assert_eq!(hi.slice(4..8), b.slice(20..24));
        drop((lo, hi));
        assert_eq!(b.ref_count(), 1);
    }

    #[test]
    fn shared_into_vec_copies_just_the_view() {
        let b = MsgBuf::from_vec(vec![9u8; 64]);
        let part = b.slice(8..24);
        assert_eq!(part.into_vec(), vec![9u8; 16]);
        assert_eq!(b.len(), 64); // original untouched
    }

    #[test]
    fn empty_is_shared_and_cheap() {
        let a = MsgBuf::new();
        let b = MsgBuf::new();
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(a, b);
        assert!(a.ref_count() >= 2, "empty buffers share one static region");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        MsgBuf::from_vec(vec![0; 4]).slice(2..6);
    }

    #[test]
    fn equality_and_conversions() {
        let b: MsgBuf = vec![1u8, 2, 3].into();
        assert_eq!(b, vec![1u8, 2, 3]);
        assert_eq!(b, *[1u8, 2, 3].as_slice());
        let c: MsgBuf = [1u8, 2, 3].as_slice().into();
        assert_eq!(b, c);
    }
}
