//! Property: every algorithm in the dispatch enum is schedule-independent.
//!
//! Each `AlltoallvAlgorithm` runs under the deterministic simulator across
//! 16 different schedule seeds; every rank's received bytes must be
//! identical across all of them. Any dependence on message arrival order,
//! probe timing, or rank interleaving shows up as a byte diff with the
//! failing seed in the assertion message — replayable via the recorded
//! trace.

use bruck_comm::{Communicator, SimComm};
use bruck_core::{alltoallv, packed_displs, AlltoallvAlgorithm};
use bruck_workload::{Distribution, SizeMatrix};

const SCHED_SEEDS: std::ops::Range<u64> = 0..16;

/// One simulated exchange: returns every rank's recv buffer, and checks the
/// closed-form pattern so a wrong-but-stable result cannot slip through.
fn exchange(algo: AlltoallvAlgorithm, m: &SizeMatrix, sched_seed: u64) -> Vec<Vec<u8>> {
    let p = m.p();
    let run = SimComm::run(p, sched_seed, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
        for (i, b) in sendbuf.iter_mut().enumerate() {
            *b = (me.wrapping_mul(151) ^ i.wrapping_mul(29)) as u8;
        }
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
            .unwrap();
        for src in 0..p {
            let sender_displs = packed_displs(&m.sendcounts(src));
            for i in 0..recvcounts[src] {
                let expect = (src.wrapping_mul(151) ^ (sender_displs[me] + i).wrapping_mul(29)) as u8;
                assert_eq!(
                    recvbuf[rdispls[src] + i],
                    expect,
                    "{algo:?} sched_seed={sched_seed} src={src} i={i}"
                );
            }
        }
        recvbuf
    });
    run.results
}

#[test]
fn every_algorithm_delivers_identical_bytes_across_16_schedules() {
    let p = 5;
    let m = SizeMatrix::generate(Distribution::Normal, 0xA11, p, 32);
    for algo in AlltoallvAlgorithm::ALL {
        let baseline = exchange(algo, &m, SCHED_SEEDS.start);
        for seed in SCHED_SEEDS.start + 1..SCHED_SEEDS.end {
            let got = exchange(algo, &m, seed);
            assert_eq!(
                got, baseline,
                "{algo:?}: recv bytes differ between sched seeds {} and {seed}",
                SCHED_SEEDS.start
            );
        }
    }
}

/// The skewed distribution exercises the zero-block and uneven-window edge
/// cases of every algorithm under the same 16-schedule sweep.
#[test]
fn every_algorithm_is_schedule_independent_under_skew() {
    let p = 5;
    let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 0xB22, p, 40);
    for algo in AlltoallvAlgorithm::ALL {
        let baseline = exchange(algo, &m, SCHED_SEEDS.start);
        for seed in SCHED_SEEDS.start + 1..SCHED_SEEDS.end {
            assert_eq!(
                exchange(algo, &m, seed),
                baseline,
                "{algo:?}: skewed recv bytes differ at sched seed {seed}"
            );
        }
    }
}
