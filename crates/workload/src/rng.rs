//! A small, seedable, dependency-free PRNG shared by the workload generators
//! and the randomized test suites.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA '14 — the `java.util.SplittableRandom`
//! mixer): a 64-bit counter passed through an avalanching finalizer. Not
//! cryptographic; statistically excellent for test-case generation, fully
//! deterministic across platforms, and one `u64` of state.

/// The SplitMix64 finalizer: one well-distributed `u64` from any `u64`.
///
/// Useful directly as a keyed hash (the workload generators derive O(1)
/// block sizes from `(seed, src, dst)` keys through it).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sequential SplitMix64 stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`. `bound = 0` returns 0.
    ///
    /// Uses the widening-multiply reduction (Lemire); the modulo bias is
    /// < 2⁻⁶⁴·bound — irrelevant for test-case generation.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw from `[lo, hi)` (half-open). Panics if `lo >= hi`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Uniform draw from `[0, bound)` as a `usize`.
    #[inline]
    pub fn next_usize(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `bool`.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `len` random bytes.
    pub fn next_bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// An independent child stream (split): keyed off this stream's next
    /// draw, so parent and child sequences do not correlate.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(splitmix64(self.next_u64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_vector() {
        // Reference sequence for seed 0 (matches the published SplitMix64).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
            let x = r.next_range(5, 10);
            assert!((5..10).contains(&x));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_usize(3) < 3);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SplitMix64::new(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.next_usize(8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn split_decorrelates() {
        let mut parent = SplitMix64::new(3);
        let mut child = parent.split();
        let a: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
