//! `bruck-probe` — zero-overhead-when-disabled phase-span instrumentation
//! (DESIGN.md §10).
//!
//! Every algorithm in this crate brackets its phases with [`span`] guards.
//! When no recorder is installed on the current thread (the default), opening
//! a span reads no clock and allocates nothing — the only cost is one
//! thread-local flag check, so production paths are unaffected. When a
//! recorder *is* installed (via [`install`]), each guard records a
//! [`PhaseEvent`] with nanosecond start/duration on drop, yielding a named
//! per-rank phase timeline that the bench crate exports as a chrome trace and
//! the conformance suite asserts structural counts against.
//!
//! Under `ThreadComm` one rank is one OS thread, so "per thread" is
//! "per rank": call [`install`] at the top of the rank closure and [`take`]
//! at the end.
//!
//! ## Span naming convention
//!
//! `"<algorithm>.<phase>"`, both parts lower-snake-case, e.g.
//! `two_phase.data` or `padded.scan`. Per-step phases reuse one name (one
//! event per step), so an algorithm's step count is the event count for that
//! name — the structural quantity `tests/conformance.rs` checks.
//!
//! ## Wall-clock discipline
//!
//! `bruck-lint` bans ad-hoc `Instant::now()` in `crates/core`: all timing
//! goes through [`span`] or the crate-internal [`Stopwatch`] (which backs the
//! public `*_timed` phase breakdowns). This file is the single audited
//! exception where the clock is actually read.

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// One completed phase span recorded on this thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Span name, `"<algorithm>.<phase>"` by convention (see module docs).
    pub name: &'static str,
    /// Start offset in nanoseconds since [`install`] on this thread.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

struct Recorder {
    origin: Instant,
    events: Vec<PhaseEvent>,
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Start recording spans on this thread (idempotent: re-installing clears any
/// previously recorded events and restarts the time origin).
pub fn install() {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder { origin: Instant::now(), events: Vec::new() });
    });
}

/// Stop recording on this thread and return everything recorded since
/// [`install`], in completion (drop) order. Returns an empty vector if no
/// recorder was installed.
pub fn take() -> Vec<PhaseEvent> {
    RECORDER.with(|r| r.borrow_mut().take()).map_or_else(Vec::new, |rec| rec.events)
}

/// Whether a recorder is installed on this thread.
pub fn enabled() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// RAII phase guard: measures from [`span`] to drop. Inert (no clock read,
/// no allocation) when recording is disabled.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    armed: Option<(&'static str, Instant)>,
}

/// Open a phase span named `name`. Bind it to a `_guard`-style local so it
/// drops at the end of the phase's scope.
pub fn span(name: &'static str) -> Span {
    Span { armed: if enabled() { Some((name, Instant::now())) } else { None } }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let dur = start.elapsed();
            RECORDER.with(|r| {
                if let Some(rec) = r.borrow_mut().as_mut() {
                    rec.events.push(PhaseEvent {
                        name,
                        start_ns: start.duration_since(rec.origin).as_nanos() as u64,
                        dur_ns: dur.as_nanos() as u64,
                    });
                }
            });
        }
    }
}

/// The crate's sanctioned stopwatch, backing the public `*_timed` phase
/// breakdowns. Keeping the raw clock behind this type (and [`span`]) is what
/// lets `bruck-lint` ban ad-hoc `Instant::now()` timing in `crates/core`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub(crate) fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub(crate) fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        assert!(!enabled());
        {
            let _s = span("noop.phase");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn install_take_roundtrip_in_drop_order() {
        install();
        assert!(enabled());
        {
            let _outer = span("outer.phase");
            {
                let _inner = span("inner.phase");
            }
        }
        let events = take();
        assert!(!enabled(), "take() uninstalls");
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["inner.phase", "outer.phase"], "drop order: inner completes first");
        // The outer span encloses the inner one on the timeline.
        assert!(events[1].start_ns <= events[0].start_ns);
        assert!(
            events[1].start_ns + events[1].dur_ns >= events[0].start_ns + events[0].dur_ns,
            "outer must end at or after inner"
        );
    }

    #[test]
    fn reinstall_clears_previous_events() {
        install();
        {
            let _s = span("stale.phase");
        }
        install();
        {
            let _s = span("fresh.phase");
        }
        let events = take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "fresh.phase");
    }

    #[test]
    fn per_step_names_count_steps() {
        install();
        for _ in 0..5 {
            let _s = span("algo.step");
        }
        let events = take();
        assert_eq!(events.iter().filter(|e| e.name == "algo.step").count(), 5);
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }
}
