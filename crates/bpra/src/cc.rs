//! Distributed connected components by label propagation — a third
//! iterated-all-to-all application in the Figure 11 family, with the opposite
//! load profile to transitive closure: per-iteration traffic *shrinks* as
//! labels stabilize, sweeping an algorithm through the small-N regime where
//! the Bruck family wins.

use std::collections::HashMap;

use bruck_comm::{CommResult, Communicator, ReduceOp};
use bruck_core::AlltoallvAlgorithm;

use crate::{exchange_tuples, owner, ExchangeStats, Tuple};

/// Result of a distributed connected-components run (per rank).
#[derive(Debug)]
pub struct CcResult {
    /// Number of connected components (undirected) globally.
    pub components: u64,
    /// Label-propagation iterations until quiescence.
    pub iterations: usize,
    /// This rank's vertices and their final component labels (the label is
    /// the smallest vertex id in the component).
    pub local_labels: HashMap<u64, u64>,
    /// Per-iteration exchange stats.
    pub per_iteration: Vec<ExchangeStats>,
}

/// Compute connected components of the *undirected* view of `edges` (every
/// rank passes the same edge list). Vertices are the endpoints that appear.
pub fn connected_components<C: Communicator + ?Sized>(
    comm: &C,
    algo: AlltoallvAlgorithm,
    edges: &[Tuple],
) -> CommResult<CcResult> {
    let p = comm.size();
    let me = comm.rank();

    // Local adjacency for owned vertices (both directions).
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut labels: HashMap<u64, u64> = HashMap::new();
    for &(a, b) in edges {
        for (x, y) in [(a, b), (b, a)] {
            if owner(x, p) == me {
                adj.entry(x).or_default().push(y);
                labels.insert(x, x);
            }
        }
    }

    // Changed set: vertices whose label improved since last broadcast.
    let mut changed: Vec<u64> = labels.keys().copied().collect();
    let mut per_iteration = Vec::new();
    loop {
        // Push (neighbor, my_label) to each neighbor's owner.
        let mut outboxes: Vec<Vec<Tuple>> = vec![Vec::new(); p];
        for &v in &changed {
            let label = labels[&v];
            for &n in adj.get(&v).map_or(&[][..], Vec::as_slice) {
                outboxes[owner(n, p)].push((n, label));
            }
        }
        let (received, stats) = exchange_tuples(comm, algo, &outboxes)?;
        per_iteration.push(stats);

        changed.clear();
        for (v, candidate) in received {
            let cur = labels.get_mut(&v).expect("owner holds every endpoint it is sent");
            if candidate < *cur {
                *cur = candidate;
                changed.push(v);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        let total_changed = comm.allreduce_u64(changed.len() as u64, ReduceOp::Sum)?;
        if total_changed == 0 {
            break;
        }
    }

    let local_roots = labels.iter().filter(|(v, l)| v == l).count() as u64;
    let components = comm.allreduce_u64(local_roots, ReduceOp::Sum)?;
    Ok(CcResult { components, iterations: per_iteration.len(), local_labels: labels, per_iteration })
}

/// Sequential union-find oracle.
pub fn sequential_components(edges: &[Tuple]) -> u64 {
    let mut parent: HashMap<u64, u64> = HashMap::new();
    fn find(parent: &mut HashMap<u64, u64>, mut x: u64) -> u64 {
        while parent[&x] != x {
            let gp = parent[&parent[&x]];
            parent.insert(x, gp);
            x = gp;
        }
        x
    }
    for &(a, b) in edges {
        parent.entry(a).or_insert(a);
        parent.entry(b).or_insert(b);
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent.insert(ra.max(rb), ra.min(rb));
        }
    }
    let keys: Vec<u64> = parent.keys().copied().collect();
    keys.into_iter().filter(|&v| find(&mut parent, v) == v).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{graph1_like, graph2_like};
    use bruck_comm::ThreadComm;

    #[test]
    fn sequential_oracle_counts_components() {
        assert_eq!(sequential_components(&[]), 0);
        assert_eq!(sequential_components(&[(1, 2), (2, 3)]), 1);
        assert_eq!(sequential_components(&[(1, 2), (3, 4)]), 2);
        assert_eq!(sequential_components(&[(5, 5)]), 1);
    }

    #[test]
    fn distributed_matches_oracle() {
        let graphs: Vec<Vec<Tuple>> = vec![
            vec![(1, 2), (2, 3), (10, 11), (20, 20)],
            graph1_like(3, 20, 8, 5),
            graph2_like(50, 120, 5),
            vec![],
        ];
        for edges in graphs {
            let expect = sequential_components(&edges);
            for p in [1usize, 2, 4, 7] {
                for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
                    let e = edges.clone();
                    let out = ThreadComm::run(p, move |comm| {
                        connected_components(comm, algo, &e).unwrap().components
                    });
                    assert!(out.iter().all(|&c| c == expect), "p={p} algo={algo:?}");
                }
            }
        }
    }

    #[test]
    fn labels_are_component_minima() {
        let edges = vec![(7u64, 3u64), (3, 9), (100, 101)];
        let results = ThreadComm::run(3, move |comm| {
            connected_components(comm, AlltoallvAlgorithm::TwoPhaseBruck, &edges).unwrap()
        });
        let mut all: HashMap<u64, u64> = HashMap::new();
        for r in results {
            all.extend(r.local_labels);
        }
        assert_eq!(all[&7], 3);
        assert_eq!(all[&3], 3);
        assert_eq!(all[&9], 3);
        assert_eq!(all[&100], 100);
        assert_eq!(all[&101], 100);
    }

    #[test]
    fn per_iteration_traffic_shrinks() {
        // Label propagation quiesces: late iterations carry less than the
        // first (the shrinking-N profile).
        let edges = graph1_like(2, 60, 10, 9);
        let results = ThreadComm::run(4, move |comm| {
            connected_components(comm, AlltoallvAlgorithm::Vendor, &edges).unwrap()
        });
        let r = &results[0];
        assert!(r.iterations > 3);
        let first = r.per_iteration.first().unwrap().n_max;
        let last_active = r.per_iteration[r.iterations - 2].n_max;
        assert!(last_active <= first, "first {first} vs late {last_active}");
    }
}
