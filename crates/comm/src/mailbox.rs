//! The matching core behind point-to-point transfers: [`MatchStore`] (the
//! backend-agnostic `(source, tag)` matching engine) and [`Mailbox`] (its
//! blocking, condvar-based wrapper used by the threaded backend).
//!
//! A send deposits the payload into the destination's store under the
//! `(source, tag)` key (the *eager protocol*: the sender never blocks). A
//! receive pops the oldest message matching its `(source, tag)` pair.
//!
//! Matching preserves MPI's **non-overtaking** rule: two messages from the
//! same source with the same tag are received in the order they were sent,
//! because each `(source, tag)` key maps to a FIFO queue.
//!
//! Messages are stored as [`MsgBuf`] views, so a queued message shares its
//! backing region with the sender's pack buffer — the deposit is a
//! reference-count bump, not a copy.
//!
//! ## Condvar → readiness migration
//!
//! Historically the blocking logic (one `Condvar` per rank) lived directly in
//! `Mailbox` and was the *only* wait primitive, which welded the matching
//! engine to the one-OS-thread-per-rank backend. The matching core is now the
//! non-blocking [`MatchStore`]; how a receiver *waits* is a backend decision
//! layered on top:
//!
//! * [`Mailbox`] (this module) wraps a store in a `Mutex` + `Condvar` for
//!   [`crate::ThreadComm`], where a rank owns an OS thread it can park.
//! * [`crate::SimComm`] keeps per-rank stores inside its scheduler state and
//!   blocks by handing the run token to another rank.
//! * [`crate::EventComm`] pairs each store with a *waiter* registration (an
//!   explicit readiness/wakeup list); a receive that cannot complete parks
//!   the lightweight task, and the depositing sender wakes it through the
//!   scheduler — no per-rank thread, no per-rank condvar.
//!
//! All three backends therefore share one matching semantics (FIFO per key,
//! non-destructive bounded receive, pop-and-trim hygiene) by construction.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::{MsgBuf, Tag};

/// Per-(source, tag) FIFO queues of undelivered messages.
type MatchQueues = BTreeMap<(usize, Tag), VecDeque<MsgBuf>>;

/// Shared message-accounting counters for one world, updated on every deposit
/// and pop so world-level leak assertions are O(1) loads instead of O(P)
/// lock-sweeps over every rank's store (which matters at P = 32k, where the
/// sweep itself used to dominate small test runs).
#[derive(Debug, Default)]
pub(crate) struct StoreStats {
    /// Messages currently deposited but not yet received, across all ranks.
    pending: AtomicUsize,
    /// Total deposits ever made (throughput accounting for `bruck-scale`).
    deposited: AtomicUsize,
    /// Match-map keys stranded with a drained queue. Every pop path trims
    /// drained keys immediately, so this stays 0; any future pop path that
    /// skips the trim must bump it. Structural per-store scans
    /// ([`MatchStore::scan_dead_keys`]) cross-check it in tests.
    dead_keys: AtomicUsize,
}

impl StoreStats {
    pub(crate) fn new() -> Arc<StoreStats> {
        Arc::new(StoreStats::default())
    }

    /// Undelivered messages across every store sharing these stats.
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Total messages ever deposited across every store sharing these stats.
    pub(crate) fn deposited(&self) -> usize {
        self.deposited.load(Ordering::SeqCst)
    }

    /// Stranded drained keys (must be 0; see field docs).
    pub(crate) fn dead_keys(&self) -> usize {
        self.dead_keys.load(Ordering::SeqCst)
    }
}

/// The non-blocking matching engine: `(source, tag)` → FIFO queue of
/// [`MsgBuf`] views, with the pop-and-trim invariant (a drained key is
/// removed by the pop that drained it, so the map never accumulates dead
/// entries across thousands of fixpoint iterations).
///
/// `MatchStore` never waits — waiting is the caller's concern (condvar,
/// scheduler token, or task parking; see the module docs). Locking is also
/// the caller's concern: each backend shards one store per rank behind its
/// own lock, so contention is between exactly one receiver (the owning rank)
/// and its current senders, and critical sections only move a [`MsgBuf`]
/// (three words).
pub(crate) struct MatchStore {
    queues: MatchQueues,
    stats: Arc<StoreStats>,
}

impl MatchStore {
    pub(crate) fn new(stats: Arc<StoreStats>) -> MatchStore {
        MatchStore { queues: MatchQueues::new(), stats }
    }

    /// Deposit a message from `src` with `tag`. Never blocks, never copies.
    pub(crate) fn push(&mut self, src: usize, tag: Tag, data: MsgBuf) {
        self.queues.entry((src, tag)).or_default().push_back(data);
        self.stats.pending.fetch_add(1, Ordering::SeqCst);
        self.stats.deposited.fetch_add(1, Ordering::SeqCst);
    }

    /// Pop the oldest message matching `(src, tag)`, if any, trimming the
    /// key when its queue drains. Every pop path must go through here.
    pub(crate) fn try_pop(&mut self, src: usize, tag: Tag) -> Option<MsgBuf> {
        let q = self.queues.get_mut(&(src, tag))?;
        let msg = q.pop_front();
        if q.is_empty() {
            self.queues.remove(&(src, tag));
        }
        if msg.is_some() {
            self.stats.pending.fetch_sub(1, Ordering::SeqCst);
        }
        msg
    }

    /// Like [`MatchStore::try_pop`], but refuses (without consuming the
    /// message) if the matching message is longer than `cap` bytes:
    /// `Some(Err(message_len))`.
    ///
    /// This is what makes `recv_into` truncation non-destructive — the check
    /// happens *before* the message leaves the queue, so a caller that
    /// retries with a bigger buffer still observes the message.
    pub(crate) fn try_pop_bounded(
        &mut self,
        src: usize,
        tag: Tag,
        cap: usize,
    ) -> Option<Result<MsgBuf, usize>> {
        let len = self.peek_len(src, tag)?;
        if len > cap {
            return Some(Err(len));
        }
        self.try_pop(src, tag).map(Ok)
    }

    /// Byte length of the next matching message, without consuming it.
    pub(crate) fn peek_len(&self, src: usize, tag: Tag) -> Option<usize> {
        self.queues.get(&(src, tag)).and_then(VecDeque::front).map(MsgBuf::len)
    }

    /// Undelivered messages in *this* store (O(keys) structural scan; the
    /// cheap world-level aggregate lives in [`StoreStats::pending`]).
    pub(crate) fn scan_pending(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Keys whose queue is empty in *this* store. Must always be 0: every
    /// pop path trims drained keys. Structural cross-check for the shared
    /// [`StoreStats::dead_keys`] counter.
    pub(crate) fn scan_dead_keys(&self) -> usize {
        self.queues.values().filter(|q| q.is_empty()).count()
    }
}

/// A single rank's incoming-message store for the threaded backend: a
/// [`MatchStore`] behind a mutex, plus the condition variable its owning
/// OS thread parks on.
pub(crate) struct Mailbox {
    store: Mutex<MatchStore>,
    arrived: Condvar,
}

impl Mailbox {
    /// A standalone mailbox with private stats (unit tests).
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Mailbox::with_stats(StoreStats::new())
    }

    /// A mailbox participating in a world's shared accounting.
    pub(crate) fn with_stats(stats: Arc<StoreStats>) -> Self {
        Mailbox { store: Mutex::new(MatchStore::new(stats)), arrived: Condvar::new() }
    }

    /// A mailbox outlives any single rank's panic; recover the store rather
    /// than cascading poison panics across every other rank's shutdown path.
    fn lock(&self) -> MutexGuard<'_, MatchStore> {
        self.store.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Deposit a message from `src` with `tag`. Never blocks, never copies.
    pub(crate) fn push(&self, src: usize, tag: Tag, data: MsgBuf) {
        let mut store = self.lock();
        store.push(src, tag, data);
        // notify_all: several receives with distinct (src, tag) keys can be
        // parked on the same condvar (collectives never do this, but user
        // code running helper threads may).
        self.arrived.notify_all();
        drop(store);
    }

    /// Pop the oldest message matching `(src, tag)`, blocking until present.
    pub(crate) fn pop(&self, src: usize, tag: Tag) -> MsgBuf {
        let mut store = self.lock();
        loop {
            if let Some(msg) = store.try_pop(src, tag) {
                return msg;
            }
            store = self.arrived.wait(store).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Like [`Mailbox::pop`], but refuses (without consuming the message) if
    /// the matching message is longer than `cap` bytes: `Err(message_len)`.
    pub(crate) fn pop_bounded(&self, src: usize, tag: Tag, cap: usize) -> Result<MsgBuf, usize> {
        let mut store = self.lock();
        loop {
            if let Some(outcome) = store.try_pop_bounded(src, tag, cap) {
                return outcome;
            }
            store = self.arrived.wait(store).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Pop with a deadline: `None` if no matching message arrives in time.
    pub(crate) fn pop_timeout(
        &self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Option<MsgBuf> {
        let deadline = std::time::Instant::now() + timeout;
        let mut store = self.lock();
        loop {
            if let Some(msg) = store.try_pop(src, tag) {
                return Some(msg);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timed_out) = self
                .arrived
                .wait_timeout(store, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            store = guard;
            if timed_out.timed_out() {
                // One last check: the message may have raced the timeout.
                // (Goes through try_pop like every other pop, so a race-won
                // pop cannot strand an empty dead key in the map.)
                return store.try_pop(src, tag);
            }
        }
    }

    /// Non-blocking probe: the byte length of the next matching message.
    pub(crate) fn probe(&self, src: usize, tag: Tag) -> Option<usize> {
        self.lock().peek_len(src, tag)
    }

    /// Number of undelivered messages in this mailbox (structural scan).
    pub(crate) fn pending(&self) -> usize {
        self.lock().scan_pending()
    }

    /// Number of match-map keys whose queue is empty in this mailbox
    /// (structural scan; must always be 0).
    pub(crate) fn dead_keys(&self) -> usize {
        self.lock().scan_dead_keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn buf(bytes: &[u8]) -> MsgBuf {
        MsgBuf::copy_from_slice(bytes)
    }

    #[test]
    fn push_pop_fifo_per_key() {
        let mb = Mailbox::new();
        mb.push(0, 7, buf(&[1]));
        mb.push(0, 7, buf(&[2]));
        mb.push(1, 7, buf(&[9]));
        assert_eq!(mb.pop(0, 7), vec![1]);
        assert_eq!(mb.pop(0, 7), vec![2]);
        assert_eq!(mb.pop(1, 7), vec![9]);
        assert_eq!(mb.pending(), 0);
        assert_eq!(mb.dead_keys(), 0);
    }

    #[test]
    fn push_is_a_refcount_bump_not_a_copy() {
        let mb = Mailbox::new();
        let region = MsgBuf::from_vec((0u8..64).collect());
        let ptr = region.as_slice().as_ptr();
        mb.push(0, 1, region.slice(16..32));
        let got = mb.pop(0, 1);
        // The queued message aliases the sender's region.
        assert_eq!(got.as_slice().as_ptr(), unsafe { ptr.add(16) });
        assert_eq!(got, region.slice(16..32));
    }

    #[test]
    fn pop_blocks_until_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop(3, 11));
        std::thread::sleep(Duration::from_millis(20));
        mb.push(3, 11, buf(&[42]));
        assert_eq!(t.join().unwrap(), vec![42]);
    }

    #[test]
    fn probe_reports_length_without_consuming() {
        let mb = Mailbox::new();
        assert_eq!(mb.probe(0, 0), None);
        mb.push(0, 0, buf(&[0; 17]));
        assert_eq!(mb.probe(0, 0), Some(17));
        assert_eq!(mb.pop(0, 0).len(), 17);
    }

    #[test]
    fn pop_bounded_rejects_without_consuming() {
        let mb = Mailbox::new();
        mb.push(2, 5, buf(&[7; 16]));
        assert_eq!(mb.pop_bounded(2, 5, 4), Err(16));
        assert_eq!(mb.pending(), 1, "rejected message must stay queued");
        let got = mb.pop_bounded(2, 5, 16).unwrap();
        assert_eq!(got, vec![7; 16]);
        assert_eq!(mb.pending(), 0);
        assert_eq!(mb.dead_keys(), 0);
    }

    #[test]
    fn distinct_tags_do_not_match() {
        let mb = Arc::new(Mailbox::new());
        mb.push(0, 1, buf(&[1]));
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop(0, 2));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "pop(0,2) must not match tag 1");
        mb.push(0, 2, buf(&[2]));
        assert_eq!(t.join().unwrap(), vec![2]);
        assert_eq!(mb.pop(0, 1), vec![1]);
    }

    #[test]
    fn pop_timeout_race_leaves_no_dead_keys() {
        // Regression test for the race-path pop that used to bypass key
        // cleanup: hammer pushes that land right around the timeout deadline
        // and assert the match map never strands an empty queue.
        let mb = Arc::new(Mailbox::new());
        for round in 0..200u64 {
            let mb2 = Arc::clone(&mb);
            let pusher = std::thread::spawn(move || {
                // Jitter the push across the receiver's deadline window.
                std::thread::sleep(Duration::from_micros(round % 120));
                mb2.push(1, 3, buf(&[round as u8]));
            });
            let got = mb.pop_timeout(1, 3, Duration::from_micros(60));
            pusher.join().unwrap();
            if got.is_none() {
                // Push lost the race: drain it so the next round starts clean.
                assert_eq!(mb.pop(1, 3), vec![round as u8]);
            }
            assert_eq!(mb.dead_keys(), 0, "round {round} stranded an empty key");
        }
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn pop_timeout_returns_none_when_nothing_arrives() {
        let mb = Mailbox::new();
        assert!(mb.pop_timeout(0, 0, Duration::from_millis(5)).is_none());
        assert_eq!(mb.dead_keys(), 0);
    }

    #[test]
    fn shared_stats_track_deposits_and_pops_across_stores() {
        // Two mailboxes in one "world": the shared counters see both, and the
        // atomic aggregates agree with the structural per-store scans.
        let stats = StoreStats::new();
        let a = Mailbox::with_stats(Arc::clone(&stats));
        let b = Mailbox::with_stats(Arc::clone(&stats));
        a.push(0, 1, buf(&[1]));
        a.push(0, 1, buf(&[2]));
        b.push(1, 1, buf(&[3]));
        assert_eq!(stats.pending(), 3);
        assert_eq!(stats.deposited(), 3);
        assert_eq!(stats.pending(), a.pending() + b.pending());
        assert_eq!(a.pop(0, 1), vec![1]);
        assert_eq!(stats.pending(), 2);
        assert_eq!(b.pop(1, 1), vec![3]);
        assert_eq!(a.pop(0, 1), vec![2]);
        assert_eq!(stats.pending(), 0);
        assert_eq!(stats.deposited(), 3, "deposited is cumulative, not current");
        assert_eq!(stats.dead_keys(), 0);
    }

    #[test]
    fn match_store_bounded_pop_is_non_destructive() {
        let mut store = MatchStore::new(StoreStats::new());
        assert!(store.try_pop_bounded(4, 2, 8).is_none(), "empty store has no match");
        store.push(4, 2, buf(&[9; 10]));
        assert_eq!(store.try_pop_bounded(4, 2, 4), Some(Err(10)));
        assert_eq!(store.scan_pending(), 1);
        assert_eq!(store.try_pop_bounded(4, 2, 10).and_then(Result::ok), Some(buf(&[9; 10])));
        assert_eq!(store.scan_pending(), 0);
        assert_eq!(store.scan_dead_keys(), 0);
    }
}
