//! Failure detection: proof-of-life heartbeat sweeps with suspicion
//! timeouts, over any [`Communicator`].
//!
//! The resilient exchange drivers can *report* a fault (a timeout, a
//! [`crate::CommError::RankFailed`] from an ARQ layer), but a single error
//! names at most one peer and may be a symptom, not the root cause. This
//! module turns "something went wrong" into a concrete local *suspicion
//! set*: which members of a group failed to prove they are alive within a
//! window.
//!
//! ## Protocol
//!
//! Every live member enters [`detect_failures`] (SPMD, like a collective)
//! and immediately sends a PING to every other unsuspected member. It then
//! polls until the window closes, answering incoming PINGs with PONGs and
//! collecting proof of life. The crucial asymmetry-absorbing rule:
//! **any** detector message for this epoch — PING or PONG — proves its
//! sender alive. Sends are eager, so a member that enters the sweep late
//! still finds the early birds' PINGs already in its mailbox, and the early
//! birds collect the laggard's PINGs as proof without needing a full
//! round-trip. While waiting, unproven members are re-PINGed every
//! heartbeat period, jittered by a seeded splitmix draw so heartbeats from
//! different ranks spread out instead of phase-locking.
//!
//! A member is *suspected* when the window closes without proof of life, or
//! when an underlying reliability layer reports it dead
//! ([`crate::CommError::RankFailed`]) during a send. Suspicions are local
//! and may differ across ranks (a member that dies mid-window may have
//! proved itself to some peers only); [`crate::agree_survivors`] is the
//! protocol that makes them consistent.
//!
//! All waiting happens on the trait clock ([`Communicator::now`] /
//! [`Communicator::sleep`]), so the detector runs identically on
//! [`crate::ThreadComm`] (wall time), [`crate::SimComm`] (virtual time, a
//! 100 ms window costs microseconds of wall clock), and [`crate::EventComm`].
//!
//! ## Tag budget
//!
//! PINGs and PONGs travel on reserved tags `RESERVED_TAG_BASE + 0x3000 +
//! 2·(epoch mod 128)` and `+1`, and every frame carries the full epoch for
//! filtering — traffic from a previous membership epoch can never be
//! mistaken for proof of life in the current one.

use std::time::Duration;

use crate::chaos::splitmix;
use crate::{CommError, CommResult, Communicator, MsgBuf, Tag, RESERVED_TAG_BASE};

/// Base of the failure-detector tag block (`0x3000..0x30FF` above
/// [`RESERVED_TAG_BASE`]): 128 epochs × (ping, pong).
pub(crate) const DETECT_TAG_BASE: Tag = RESERVED_TAG_BASE + 0x3000;

fn ping_tag(epoch: u32) -> Tag {
    DETECT_TAG_BASE + 2 * (epoch % 0x80)
}

fn pong_tag(epoch: u32) -> Tag {
    ping_tag(epoch) + 1
}

fn heartbeat_frame(epoch: u32) -> MsgBuf {
    MsgBuf::from_vec(epoch.to_le_bytes().to_vec())
}

fn frame_epoch(frame: &MsgBuf) -> Option<u32> {
    Some(u32::from_le_bytes(frame.as_slice().try_into().ok()?))
}

/// A set of suspected members, indexed by *position* in the member list the
/// detector / agreement ran over (not by parent rank). Dense and cheap to
/// put on the wire: agreement floods these bitmaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suspicion {
    n: usize,
    bits: Vec<u64>,
}

impl Suspicion {
    /// An empty suspicion set over `n` members.
    pub fn none(n: usize) -> Suspicion {
        Suspicion { n, bits: vec![0; n.div_ceil(64)] }
    }

    /// Number of members the set ranges over.
    pub fn members(&self) -> usize {
        self.n
    }

    /// Mark member position `i` as suspected.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.n, "suspicion index {i} out of range {}", self.n);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether member position `i` is suspected.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.n, "suspicion index {i} out of range {}", self.n);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Union `other` into `self`; returns whether anything changed.
    pub fn union(&mut self, other: &Suspicion) -> bool {
        assert_eq!(self.n, other.n, "suspicion sets over different member counts");
        let mut changed = false;
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            let merged = *w | *o;
            changed |= merged != *w;
            *w = merged;
        }
        changed
    }

    /// How many members are suspected.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The suspected member positions, ascending.
    pub fn positions(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| self.get(i)).collect()
    }

    /// Wire encoding: the bit words, little-endian. The member count is
    /// implied by the group both sides already share.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.bits.len() * 8);
        for w in &self.bits {
            v.extend_from_slice(&w.to_le_bytes());
        }
        v
    }

    /// Decode a wire bitmap for an `n`-member group; `None` if the length
    /// is wrong or a bit beyond `n` is set (corrupt or mis-grouped frame).
    pub fn from_bytes(n: usize, bytes: &[u8]) -> Option<Suspicion> {
        let words = n.div_ceil(64);
        if bytes.len() != words * 8 {
            return None;
        }
        let mut bits = Vec::with_capacity(words);
        for chunk in bytes.chunks_exact(8) {
            bits.push(u64::from_le_bytes(chunk.try_into().ok()?));
        }
        if n % 64 != 0 {
            if let Some(last) = bits.last() {
                if *last >> (n % 64) != 0 {
                    return None;
                }
            }
        }
        Some(Suspicion { n, bits })
    }
}

/// Timing policy for one [`detect_failures`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Total suspicion window: a member unproven when it closes is
    /// suspected. Must cover the entry skew between ranks (a rank may start
    /// the sweep late — e.g. only after burning a full exchange deadline)
    /// plus, when the detector runs above an ARQ layer, that layer's full
    /// retry budget for a send to a dead peer.
    pub window: Duration,
    /// Re-PING period for members that have not yet proved themselves.
    pub heartbeat: Duration,
    /// Seeded jitter of up to one heartbeat period is added to each rank's
    /// re-PING schedule from this seed (spreads heartbeats; keeps replays
    /// deterministic).
    pub seed: u64,
    /// Poll quantum between service passes, on the trait clock.
    pub poll: Duration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            window: Duration::from_millis(100),
            heartbeat: Duration::from_millis(20),
            seed: 0,
            poll: Duration::from_micros(50),
        }
    }
}

/// Map a send-side error to the member position it incriminates, if any.
/// `RankFailed` naming *us* (we are the crashed rank) and non-liveness
/// errors are returned to the caller instead.
fn suspect_of<C: Communicator + ?Sized>(
    comm: &C,
    members: &[usize],
    e: &CommError,
) -> Option<usize> {
    match e {
        CommError::RankFailed { rank } if *rank != comm.rank() => {
            members.iter().position(|&m| m == *rank)
        }
        _ => None,
    }
}

/// One SPMD proof-of-life sweep over `members` (sorted parent ranks, which
/// must include the calling rank). Returns the local suspicion set:
/// `initial` plus every member that failed to prove itself within
/// [`DetectorConfig::window`]. Suspected members are never pinged or
/// waited on.
///
/// Errors only when the *calling* rank cannot participate (it crashed, or
/// the arguments are malformed) — a dead peer is a finding, not an error.
pub fn detect_failures<C: Communicator + ?Sized>(
    comm: &C,
    members: &[usize],
    epoch: u32,
    cfg: &DetectorConfig,
    initial: &Suspicion,
) -> CommResult<Suspicion> {
    let me = comm.rank();
    let n = members.len();
    if initial.members() != n {
        return Err(CommError::BadArgument("initial suspicion set size != members"));
    }
    if members.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CommError::BadArgument("members must be sorted and unique"));
    }
    let Some(me_pos) = members.iter().position(|&m| m == me) else {
        return Err(CommError::BadArgument("calling rank not in members"));
    };
    if initial.get(me_pos) {
        return Err(CommError::BadArgument("calling rank is pre-suspected"));
    }
    for &m in members {
        comm.check_rank(m)?;
    }

    let mut suspected = initial.clone();
    let mut proven = vec![false; n];
    proven[me_pos] = true;

    // Initial PING volley to every unsuspected peer. A RankFailed from an
    // ARQ layer below is immediate, definitive proof of death.
    for i in 0..n {
        if i == me_pos || suspected.get(i) {
            continue;
        }
        if let Err(e) = comm.send_buf(members[i], ping_tag(epoch), heartbeat_frame(epoch)) {
            match suspect_of(comm, members, &e) {
                Some(pos) => suspected.set(pos),
                None => return Err(e),
            }
        }
    }

    let start = comm.now();
    let deadline = start + cfg.window;
    let hb_jitter = {
        let draw = splitmix(cfg.seed ^ (u64::from(epoch) << 24) ^ me as u64);
        Duration::from_nanos(draw % (cfg.heartbeat.as_nanos().max(1) as u64))
    };
    let mut next_hb = start + cfg.heartbeat + hb_jitter;

    loop {
        let mut handled = 0usize;
        for i in 0..n {
            if i == me_pos {
                continue;
            }
            let peer = members[i];
            // PINGs prove the sender alive and deserve a PONG (even from
            // already-proven peers: their heartbeat loop is still waiting).
            while comm.probe(peer, ping_tag(epoch))?.is_some() {
                let frame = comm.recv_buf(peer, ping_tag(epoch))?;
                handled += 1;
                if frame_epoch(&frame) != Some(epoch) {
                    continue;
                }
                proven[i] = true;
                if let Err(e) = comm.send_buf(peer, pong_tag(epoch), heartbeat_frame(epoch)) {
                    match suspect_of(comm, members, &e) {
                        Some(pos) => suspected.set(pos),
                        None => return Err(e),
                    }
                }
            }
            while comm.probe(peer, pong_tag(epoch))?.is_some() {
                let frame = comm.recv_buf(peer, pong_tag(epoch))?;
                handled += 1;
                if frame_epoch(&frame) == Some(epoch) {
                    proven[i] = true;
                }
            }
        }

        let all_proven =
            (0..n).all(|i| proven[i] || suspected.get(i));
        if all_proven {
            break;
        }
        let now = comm.now();
        if now >= deadline {
            break;
        }
        if now >= next_hb {
            for i in 0..n {
                if i == me_pos || proven[i] || suspected.get(i) {
                    continue;
                }
                if let Err(e) =
                    comm.send_buf(members[i], ping_tag(epoch), heartbeat_frame(epoch))
                {
                    match suspect_of(comm, members, &e) {
                        Some(pos) => suspected.set(pos),
                        None => return Err(e),
                    }
                }
            }
            next_hb = now + cfg.heartbeat + hb_jitter;
        }
        if handled == 0 {
            comm.sleep(cfg.poll);
        }
    }

    for i in 0..n {
        if i != me_pos && !proven[i] {
            suspected.set(i);
        }
    }
    Ok(suspected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultComm, FaultPlan, SimComm, SimConfig, ThreadComm};

    fn quick() -> DetectorConfig {
        DetectorConfig {
            window: Duration::from_millis(60),
            heartbeat: Duration::from_millis(10),
            seed: 7,
            poll: Duration::from_micros(50),
        }
    }

    #[test]
    fn all_alive_proves_everyone() {
        ThreadComm::run(4, |comm| {
            let members = [0, 1, 2, 3];
            let s = detect_failures(comm, &members, 0, &quick(), &Suspicion::none(4)).unwrap();
            assert_eq!(s.count(), 0, "rank {}: {:?}", comm.rank(), s.positions());
        });
    }

    #[test]
    fn silent_rank_is_suspected_by_all_survivors() {
        // Rank 2 never enters the sweep; everyone else must suspect exactly
        // it, within roughly the window.
        ThreadComm::run(4, |comm| {
            if comm.rank() == 2 {
                return Vec::new();
            }
            let members = [0, 1, 2, 3];
            let s = detect_failures(comm, &members, 1, &quick(), &Suspicion::none(4)).unwrap();
            s.positions()
        })
        .into_iter()
        .enumerate()
        .for_each(|(r, pos)| {
            if r != 2 {
                assert_eq!(pos, vec![2], "rank {r}");
            }
        });
    }

    #[test]
    fn initially_suspected_members_are_skipped_not_pinged() {
        ThreadComm::run(3, |comm| {
            if comm.rank() == 0 {
                return Vec::new();
            }
            let mut initial = Suspicion::none(3);
            initial.set(0);
            let s = detect_failures(comm, &[0, 1, 2], 2, &quick(), &initial).unwrap();
            s.positions()
        })
        .into_iter()
        .skip(1)
        .for_each(|pos| assert_eq!(pos, vec![0]));
    }

    #[test]
    fn crashed_rank_under_fault_comm_is_found_deterministically_in_sim() {
        // Under SimComm the sweep runs in virtual time; across schedule
        // seeds the survivors' verdicts must be identical.
        for seed in 0..8u64 {
            let report = SimComm::try_run(4, &SimConfig::from_seed(seed), |comm| {
                let plan = FaultPlan::new(1).with_crash(1, 0);
                let fc = FaultComm::new(comm, plan);
                detect_failures(&fc, &[0, 1, 2, 3], 3, &quick(), &Suspicion::none(4))
                    .map(|s| s.positions())
            });
            for (rank, out) in report.outcomes.iter().enumerate() {
                let r = out.as_ref().expect("no panics");
                if rank == 1 {
                    assert!(
                        matches!(r, Err(CommError::RankFailed { rank: 1 })),
                        "crashed rank must error out, got {r:?}"
                    );
                } else {
                    assert_eq!(r.as_ref().unwrap(), &vec![1], "seed {seed} rank {rank}");
                }
            }
        }
    }

    #[test]
    fn suspicion_bitmap_round_trips_and_rejects_garbage() {
        let mut s = Suspicion::none(70);
        s.set(0);
        s.set(63);
        s.set(69);
        let bytes = s.to_bytes();
        assert_eq!(Suspicion::from_bytes(70, &bytes), Some(s.clone()));
        assert_eq!(Suspicion::from_bytes(65, &bytes), None, "set bit beyond smaller group");
        assert_eq!(Suspicion::from_bytes(129, &bytes), None, "wrong word count");
        assert_eq!(Suspicion::from_bytes(70, &bytes[1..]), None, "wrong length");
        let mut high = bytes;
        let last = high.len() - 1;
        high[last] |= 0x80;
        assert_eq!(Suspicion::from_bytes(70, &high), None, "bit beyond n");
    }
}
