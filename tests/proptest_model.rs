//! Property tests for the cost model: conservation and symmetry invariants
//! of the trace generators over randomized size matrices.

use bruck_model::{nonuniform_trace, MatrixSource, NonuniformAlgo, RankSample, SizeSource, StepKind};
use bruck_workload::SizeMatrix;
use proptest::prelude::*;

fn size_matrix() -> impl Strategy<Value = SizeMatrix> {
    (2usize..14).prop_flat_map(|p| {
        prop::collection::vec(prop::collection::vec(0usize..500, p), p)
            .prop_map(SizeMatrix::from_rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Within every wire step, global bytes-out equals global bytes-in
    /// (every byte sent is received by some covered rank).
    #[test]
    fn per_step_flow_conservation(m in size_matrix()) {
        let p = m.p();
        let src = MatrixSource(&m);
        for algo in NonuniformAlgo::ALL {
            let trace = nonuniform_trace(algo, &src, &RankSample::all(p));
            for step in &trace.steps {
                if step.kind.tag().is_none() {
                    continue;
                }
                let out: u64 = step.loads.iter().map(|(_, l)| l.bytes_out).sum();
                let inb: u64 = step.loads.iter().map(|(_, l)| l.bytes_in).sum();
                prop_assert_eq!(out, inb, "{} step {:?}", algo.name(), step.kind);
            }
        }
    }

    /// Bruck-family data steps conserve total payload: each block crosses the
    /// wire once per set bit (binary) of its offset; the padded variants move
    /// exactly count·N per step.
    #[test]
    fn two_phase_payload_matches_popcount_routing(m in size_matrix()) {
        let p = m.p();
        let src = MatrixSource(&m);
        let trace = nonuniform_trace(NonuniformAlgo::TwoPhaseBruck, &src, &RankSample::all(p));
        let data: u64 = trace
            .steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Data(_)))
            .flat_map(|s| s.loads.iter().map(|(_, l)| l.bytes_out))
            .sum();
        let mut expect = 0u64;
        for s in 0..p {
            for d in 0..p {
                let offset = (s + p - d) % p;
                expect += (m.get(s, d) as u64) * u64::from(offset.count_ones());
            }
        }
        prop_assert_eq!(data, expect);
    }

    /// The spread-out trace moves exactly the matrix, minus self blocks.
    #[test]
    fn spread_out_moves_exactly_the_matrix(m in size_matrix()) {
        let p = m.p();
        let src = MatrixSource(&m);
        let trace = nonuniform_trace(NonuniformAlgo::Vendor, &src, &RankSample::all(p));
        let wire = trace.total_wire_bytes();
        let expect: u64 = (0..p)
            .flat_map(|s| (0..p).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d)
            .map(|(s, d)| m.get(s, d) as u64)
            .sum();
        prop_assert_eq!(wire, expect);
    }

    /// Time predictions are finite, non-negative, and monotone in the
    /// machine's beta.
    #[test]
    fn predictions_are_sane(m in size_matrix()) {
        let p = m.p();
        let src = MatrixSource(&m);
        let fast = bruck_model::MachineModel::theta_like();
        let mut slow = fast.clone();
        slow.beta *= 4.0;
        slow.beta_pair *= 4.0;
        for algo in NonuniformAlgo::ALL {
            let trace = nonuniform_trace(algo, &src, &RankSample::all(p));
            let tf = trace.time(&fast);
            let ts = trace.time(&slow);
            prop_assert!(tf.is_finite() && tf >= 0.0);
            prop_assert!(ts >= tf, "{}: slower beta must not be faster", algo.name());
        }
    }
}
