//! Backend equivalence: the same algorithm, workload, and rank must produce
//! **byte-identical** receive buffers on every runtime backend —
//! [`ThreadComm`] (rank-per-OS-thread), [`SimComm`] (deterministic
//! cooperative simulator), and [`EventComm`] (event-driven worker pool with
//! run-to-block + replay suspension).
//!
//! This is the contract that lets the rest of the workspace treat backends
//! as interchangeable: algorithms are written once against [`Communicator`],
//! verified cheaply on the simulator, stressed on real threads, and scaled
//! to tens of thousands of ranks on the event runtime — all with the
//! guarantee that a disagreement is a backend bug, not an algorithm quirk.
//!
//! The matrix covers all nine [`AlltoallvAlgorithm`]s across two workload
//! distributions and several world sizes, plus one fault-stack cell
//! (`FaultComm` → `ReliableComm` → `resilient_alltoallv`) proving the
//! wrapper stack composes unchanged over the new runtime: the fault plan
//! injects repair-only faults (drop / duplicate / corrupt — no crash), so
//! the ARQ layer must restore exactly-once delivery and the recovered bytes
//! must match on every backend.

use std::time::Duration;

use bruck_comm::{
    Communicator, EventComm, FaultComm, FaultPlan, ReliableComm, ReliableConfig, SimComm,
    ThreadComm,
};
use bruck_core::{
    alltoallv, packed_displs, resilient_alltoallv, AlltoallvAlgorithm, ResilientConfig,
};
use bruck_workload::{Distribution, SizeMatrix};

/// Pattern byte for (src, dst, idx): distinct across blocks, same convention
/// as `tests/algorithms_agree.rs`.
fn pat(src: usize, dst: usize, idx: usize) -> u8 {
    (src.wrapping_mul(101) ^ dst.wrapping_mul(17) ^ idx) as u8
}

/// One rank's side of the exchange, backend-agnostic: build the pattern
/// send buffer, run `algo`, return the receive buffer.
fn exchange<C: Communicator + ?Sized>(
    comm: &C,
    algo: AlltoallvAlgorithm,
    m: &SizeMatrix,
) -> Vec<u8> {
    let p = m.p();
    let me = comm.rank();
    let sendcounts = m.sendcounts(me);
    let sdispls = packed_displs(&sendcounts);
    let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
    for dst in 0..p {
        for idx in 0..sendcounts[dst] {
            sendbuf[sdispls[dst] + idx] = pat(me, dst, idx);
        }
    }
    let recvcounts = m.recvcounts(me);
    let rdispls = packed_displs(&recvcounts);
    let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
    alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
        .unwrap_or_else(|e| panic!("rank {me}: {} failed: {e}", algo.name()));
    recvbuf
}

fn on_thread(algo: AlltoallvAlgorithm, m: &SizeMatrix) -> Vec<Vec<u8>> {
    ThreadComm::run(m.p(), |comm| exchange(comm, algo, m))
}

fn on_sim(algo: AlltoallvAlgorithm, m: &SizeMatrix, seed: u64) -> Vec<Vec<u8>> {
    SimComm::run(m.p(), seed, |comm| exchange(comm, algo, m)).results
}

fn on_event(algo: AlltoallvAlgorithm, m: &SizeMatrix, workers: usize) -> Vec<Vec<u8>> {
    EventComm::run_pooled(m.p(), workers, |comm| exchange(comm, algo, m))
}

/// The full matrix: 9 algorithms × 2 distributions × 3 world sizes, three
/// backends each, every receive buffer compared byte-for-byte.
#[test]
fn all_algorithms_byte_identical_across_backends() {
    let dists = [(Distribution::Uniform, "uniform"), (Distribution::Normal, "normal")];
    for (dist, dist_name) in dists {
        for p in [4usize, 9, 16] {
            let m = SizeMatrix::generate(dist, 0xBAC0 ^ p as u64, p, 64);
            for algo in AlltoallvAlgorithm::ALL {
                let reference = on_thread(algo, &m);
                let sim = on_sim(algo, &m, 0x5EED ^ p as u64);
                assert_eq!(
                    sim,
                    reference,
                    "{} on SimComm diverges from ThreadComm ({dist_name}, p={p})",
                    algo.name()
                );
                // Fewer workers than ranks, so multiplexing (park + replay)
                // is actually exercised, not just the fast path.
                let event = on_event(algo, &m, 3);
                assert_eq!(
                    event,
                    reference,
                    "{} on EventComm diverges from ThreadComm ({dist_name}, p={p})",
                    algo.name()
                );
            }
        }
    }
}

/// A larger overlap point: at P = 128 the rank-per-thread backend is near
/// its comfortable ceiling while the event runtime runs the same world on
/// four workers — the bytes must still agree exactly.
#[test]
fn event_matches_thread_at_p_128() {
    let m = SizeMatrix::generate(Distribution::Uniform, 0x128, 128, 8);
    for algo in [AlltoallvAlgorithm::TwoPhaseBruck, AlltoallvAlgorithm::PaddedBruck] {
        let reference = on_thread(algo, &m);
        let event = on_event(algo, &m, 4);
        assert_eq!(event, reference, "{} diverges at p=128", algo.name());
    }
}

/// One rank's side of the fault-stack cell: repair-only faults injected
/// below an ARQ layer below the resilient driver. The plan has no crashes
/// and no stalls, so the exchange must come back lossless on every backend.
fn resilient_exchange<C: Communicator + ?Sized>(comm: &C, m: &SizeMatrix) -> Vec<u8> {
    let p = m.p();
    let plan = FaultPlan::new(0xFA17).with_drop(0.04).with_duplicate(0.04).with_corrupt(0.03);
    let fc = FaultComm::new(comm, plan);
    let rc = ReliableComm::with_config(
        &fc,
        ReliableConfig {
            ack_timeout: Duration::from_millis(10),
            max_retries: 10,
            backoff_cap: Duration::from_millis(60),
        },
    );
    let rcfg = ResilientConfig {
        algorithm: AlltoallvAlgorithm::TwoPhaseBruck,
        deadline: Duration::from_secs(4),
        commit_timeout: Duration::from_secs(1),
        peer_timeout: Duration::from_secs(2),
        epoch: 0,
    };
    let me = rc.rank();
    let sendcounts = m.sendcounts(me);
    let sdispls = packed_displs(&sendcounts);
    let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
    for dst in 0..p {
        for idx in 0..sendcounts[dst] {
            sendbuf[sdispls[dst] + idx] = pat(me, dst, idx);
        }
    }
    let recvcounts = m.recvcounts(me);
    let rdispls = packed_displs(&recvcounts);
    let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
    let outcome = resilient_alltoallv(
        &rcfg, &rc, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
    )
    .unwrap_or_else(|e| panic!("rank {me}: resilient exchange failed: {e}"));
    assert!(outcome.is_lossless(), "rank {me}: lossy outcome {outcome:?} under repair-only plan");
    // Keep re-acking peers' retransmissions until the network goes quiet, so
    // no rank tears down while another still waits on an ack.
    rc.quiesce(Duration::from_millis(120), Duration::from_secs(2))
        .unwrap_or_else(|e| panic!("rank {me}: quiesce failed: {e}"));
    recvbuf
}

/// The fault-stack cell: `FaultComm` → `ReliableComm` → `resilient_alltoallv`
/// composes unchanged over all three backends and repairs to identical bytes.
#[test]
fn fault_stack_recovers_identical_bytes_on_every_backend() {
    let m = SizeMatrix::generate(Distribution::Uniform, 0xFA17, 5, 48);
    let reference = on_thread_resilient(&m);
    let sim = SimComm::run(m.p(), 0x51F7, |comm| resilient_exchange(comm, &m)).results;
    assert_eq!(sim, reference, "fault stack on SimComm diverges from ThreadComm");
    let event = EventComm::run_pooled(m.p(), 2, |comm| resilient_exchange(comm, &m));
    assert_eq!(event, reference, "fault stack on EventComm diverges from ThreadComm");
}

fn on_thread_resilient(m: &SizeMatrix) -> Vec<Vec<u8>> {
    ThreadComm::run(m.p(), |comm| resilient_exchange(comm, m))
}
