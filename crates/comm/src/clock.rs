//! The wall-clock anchor for [`crate::Communicator::now`] /
//! [`crate::Communicator::sleep`].
//!
//! Every time-dependent code path in this workspace (deadline receives,
//! ARQ retransmission timers, injected stalls) reads time through the
//! `Communicator` trait rather than `std::time` directly, so a backend can
//! substitute a *virtual* clock (see [`crate::SimComm`]) and make timeouts
//! fire deterministically. This module is the one sanctioned place where the
//! real-thread backends touch `Instant::now` / `thread::sleep` — the
//! `no-adhoc-sleep` lint in `bruck-check` bans `thread::sleep` everywhere
//! else in `bruck-comm`/`bruck-core`.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide epoch: the first call pins it, every later call measures
/// against it. Using a shared epoch makes `now()` values from different
/// communicators in one process comparable (they are all "time since the
/// process first asked").
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic wall-clock time since the process epoch.
pub(crate) fn wall_now() -> Duration {
    epoch().elapsed()
}

/// Real suspension of the calling thread for `d`.
pub(crate) fn wall_sleep(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

/// A shared virtual clock for backends that simulate time instead of
/// spending it (see [`crate::EventComm`]; [`crate::SimComm`] keeps its clock
/// inside its scheduler state, but the semantics are identical): `now` only
/// moves when the owner explicitly advances it, and advancing is monotone.
///
/// The event runtime advances it at global quiescence — when every worker is
/// idle and no task is runnable — jumping straight to the earliest pending
/// deadline, so timed receives fire after *exactly* their budget of virtual
/// time and zero wall-clock time.
#[derive(Debug, Default)]
pub(crate) struct VirtualClock {
    now: Mutex<Duration>,
}

impl VirtualClock {
    pub(crate) fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time.
    pub(crate) fn now(&self) -> Duration {
        *self.now.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Advance to `t` (no-op if `t` is in the past); returns the new now.
    pub(crate) fn advance_to(&self, t: Duration) -> Duration {
        let mut now = self.now.lock().unwrap_or_else(|p| p.into_inner());
        *now = (*now).max(t);
        *now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_monotone_under_advance() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        assert_eq!(c.advance_to(Duration::from_millis(5)), Duration::from_millis(5));
        // Advancing "backwards" holds time still.
        assert_eq!(c.advance_to(Duration::from_millis(3)), Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
    }

    #[test]
    fn wall_now_is_monotone() {
        let a = wall_now();
        let b = wall_now();
        assert!(b >= a);
    }

    #[test]
    fn wall_sleep_advances_wall_now() {
        let a = wall_now();
        wall_sleep(Duration::from_millis(2));
        assert!(wall_now() >= a + Duration::from_millis(2));
    }
}
