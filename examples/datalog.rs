//! Distributed Datalog: write the analysis as rules, let the engine iterate
//! non-uniform all-to-alls — the §5 workload pattern in its general form.
//!
//! Run with: `cargo run --release --example datalog`

use bruck_bpra::{datalog_evaluate, graph1_like, parse_program};
use bruck_comm::ThreadComm;
use bruck_core::AlltoallvAlgorithm;

fn main() {
    // Reachability-from-roots over a generated deep graph, written as Datalog.
    let edges = graph1_like(4, 80, 30, 7);
    let mut src = String::from(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n\
         % facts follow\n",
    );
    for (a, b) in &edges {
        src.push_str(&format!("edge({a}, {b}).\n"));
    }

    let parsed = parse_program(&src).expect("valid program");
    let path_rel = parsed.rel("path").expect("declared");
    println!(
        "program: {} rules over {:?}, {} edge facts",
        parsed.program.rules.len(),
        parsed.rel_names,
        parsed.facts[parsed.rel("edge").unwrap()].len()
    );

    let p = 8;
    for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
        let program = parsed.program.clone();
        let facts = parsed.facts.clone();
        let results = ThreadComm::run(p, move |comm| {
            datalog_evaluate(comm, algo, &program, &facts).expect("evaluation")
        });
        let r0 = &results[0];
        let comm_ms: f64 = r0
            .per_iteration
            .iter()
            .map(|i| i.exchange.comm_time.as_secs_f64())
            .sum::<f64>()
            * 1e3;
        println!(
            "  {:<16} fixpoint in {:>4} iterations, {:>8} paths, all-to-all time {:>8.1} ms",
            algo.name(),
            r0.iterations,
            r0.total_facts[path_rel],
            comm_ms
        );
    }
    println!("\n(identical fixpoints; only the exchange algorithm differs — the paper's §5 setup)");
}
