//! Index arithmetic shared by every Bruck variant.

use bruck_comm::Tag;

/// Number of communication steps: ⌈log₂ P⌉ (0 for P = 1).
#[inline]
pub fn ceil_log2(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - (p - 1).leading_zeros()
}

/// The relative block indices transmitted at step `k`: all `i ∈ (0, P)` whose
/// `k`-th bit is 1. (The last step of a non-power-of-two `P` naturally yields
/// fewer than `(P+1)/2` indices, exactly as §2.2 of the paper notes.)
#[inline]
pub fn step_rel_indices(p: usize, k: u32) -> impl Iterator<Item = usize> {
    let mask = 1usize << k;
    (1..p).filter(move |i| i & mask != 0)
}

/// Count of indices produced by [`step_rel_indices`].
pub fn step_block_count(p: usize, k: u32) -> usize {
    step_rel_indices(p, k).count()
}

/// The rotation index array of Zero Rotation Bruck and two-phase Bruck
/// (§2.1, §3.2): `I[j] = (2p − j) mod P` for this rank `p`, mapping an
/// *absolute working slot* `j` back to the original send-buffer block that
/// modified Bruck's initial rotation would have placed there.
pub fn rotation_index(rank: usize, p: usize) -> Vec<usize> {
    (0..p).map(|j| ((2 * rank + p) - j) % p).collect()
}

/// `(a − b) mod p` without underflow.
#[inline]
pub fn sub_mod(a: usize, b: usize, p: usize) -> usize {
    (a + p - b % p) % p
}

/// `(a + b) mod p`.
#[inline]
pub fn add_mod(a: usize, b: usize, p: usize) -> usize {
    (a + b) % p
}

// ---------------------------------------------------------------------------
// Tag conventions. All well below `bruck_comm::RESERVED_TAG_BASE`. The cost
// model and `CountingComm`-based validation group traffic per step by tag.
// ---------------------------------------------------------------------------

/// Tag for the data message of uniform-Bruck step `k`.
pub fn uniform_step_tag(k: u32) -> Tag {
    0x0100 + k
}

/// Tag for the metadata message of non-uniform step `k` (two-phase, SLOAV).
pub fn meta_tag(k: u32) -> Tag {
    0x0200 + k
}

/// Tag for the data message of non-uniform step `k`.
pub fn data_tag(k: u32) -> Tag {
    0x0300 + k
}

/// Tag for spread-out / pairwise point-to-point payloads.
pub const SPREAD_TAG: Tag = 0x0400;

/// Tag for the hierarchical algorithm's member→leader gather phase.
pub const HIER_GATHER_TAG: Tag = 0x0500;

/// Tag for the hierarchical algorithm's leader↔leader exchange phase.
pub const HIER_LEADER_TAG: Tag = 0x0501;

/// Tag for the hierarchical algorithm's leader→member scatter phase.
pub const HIER_SCATTER_TAG: Tag = 0x0502;

/// Tag for the Ranka two-stage algorithm's piece-scatter stage.
pub const RANKA_STAGE1_TAG: Tag = 0x0600;

/// Tag for the Ranka two-stage algorithm's forwarding stage.
pub const RANKA_STAGE2_TAG: Tag = 0x0601;

/// Base tag for the resilient driver's fallback pairwise exchange. Disjoint
/// from every algorithm tag above so fallback traffic can never match a
/// message left in flight by the abandoned primary attempt. The driver adds
/// its epoch (mod [`RESILIENT_EPOCH_SPAN`]) to keep successive degraded
/// exchanges on the same communicator from matching each other's strays.
pub const RESILIENT_FALLBACK_TAG: Tag = 0x0700;

/// Number of distinct fallback tags before epoch reuse wraps around.
pub const RESILIENT_EPOCH_SPAN: u32 = 0x100;

// ---------------------------------------------------------------------------
// The wider collective family (allgatherv / reduce_scatter / allreduce /
// PAT) owns the 0x0800..0x0FFF block — disjoint from every alltoallv tag
// above and from the resilient fallback span, so composed collectives (the
// reduce_scatter + allgatherv allreduce) can never match a stray alltoallv
// frame. `bruck-model`'s collective trace generators mirror these bases;
// the gauntlet pins the two crates to the same values.
// ---------------------------------------------------------------------------

/// Tag for ring-allgatherv step `s` (one hop per step, `P − 1` steps).
pub fn agv_ring_tag(s: u32) -> Tag {
    0x0800 + s
}

/// Tag for Bruck (distance-doubling) allgatherv step `k`.
pub fn agv_bruck_tag(k: u32) -> Tag {
    0x0900 + k
}

/// Tag for the pairwise-exchange reduce_scatter (single all-pairs phase).
pub const RS_PAIRWISE_TAG: Tag = 0x0A00;

/// Tag for recursive-halving reduce_scatter step `k`.
pub fn rs_halving_tag(k: u32) -> Tag {
    0x0B00 + k
}

/// Tag for the recursive-halving pre-fold (non-power-of-two remainder ranks
/// hand their whole vector to a partner).
pub const RS_FOLD_TAG: Tag = 0x0B80;

/// Tag for the recursive-halving post-unfold (partners hand remainder ranks
/// their finished segment back).
pub const RS_UNFOLD_TAG: Tag = 0x0B81;

/// Tag for recursive-doubling allreduce step `k`.
pub fn ar_doubling_tag(k: u32) -> Tag {
    0x0C00 + k
}

/// Tag for the recursive-doubling pre-fold.
pub const AR_FOLD_TAG: Tag = 0x0C80;

/// Tag for the recursive-doubling post-unfold.
pub const AR_UNFOLD_TAG: Tag = 0x0C81;

/// Tag for PAT all-gather phase `k` (descending-bit binomial trees).
pub fn pat_ag_tag(k: u32) -> Tag {
    0x0D00 + k
}

/// Tag for PAT reduce-scatter phase `k` (ascending-bit mirrored trees).
pub fn pat_rs_tag(k: u32) -> Tag {
    0x0E00 + k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn rel_indices_have_bit_k_set() {
        for p in [2usize, 3, 4, 7, 8, 12, 16] {
            for k in 0..ceil_log2(p) {
                let idx: Vec<usize> = step_rel_indices(p, k).collect();
                assert!(idx.iter().all(|i| i & (1 << k) != 0));
                assert!(idx.iter().all(|&i| i < p));
                // At most (P+1)/2 blocks per step (§2.2).
                assert!(idx.len() <= p.div_ceil(2), "p={p} k={k} len={}", idx.len());
            }
        }
    }

    #[test]
    fn every_offset_is_routed_exactly_by_its_bits() {
        // Summing the hops 2^k over the steps in which offset i participates
        // must move a block exactly i ranks — the core Bruck invariant.
        for p in [2usize, 3, 5, 8, 13, 16, 31] {
            for i in 1..p {
                let mut moved = 0usize;
                for k in 0..ceil_log2(p) {
                    if step_rel_indices(p, k).any(|j| j == i) {
                        moved += 1 << k;
                    }
                }
                assert_eq!(moved, i, "offset {i} at p={p}");
            }
        }
    }

    #[test]
    fn last_step_of_non_power_of_two_sends_fewer_blocks() {
        let p = 12;
        let k_last = ceil_log2(p) - 1; // k = 3, mask 8
        assert_eq!(step_block_count(p, k_last), 4); // {8, 9, 10, 11}
        assert!(step_block_count(p, k_last) < p.div_ceil(2));
    }

    #[test]
    fn rotation_index_is_self_inverse_shift() {
        for p in [1usize, 2, 5, 8] {
            for rank in 0..p {
                let idx = rotation_index(rank, p);
                // I[I[j]] = j (the map j ↦ 2p − j is an involution mod P).
                for j in 0..p {
                    assert_eq!(idx[idx[j]], j);
                }
                // The self block maps to itself: I[rank] = rank.
                assert_eq!(idx[rank], rank);
            }
        }
    }
}
