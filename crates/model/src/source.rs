//! Block-size sources: where a trace generator reads `size(src, dst)` from.

use bruck_workload::{Distribution, SizeMatrix};

/// Anything that can answer "how many bytes does `src` send to `dst`?".
///
/// Implementations must be cheap per query — trace generation at
/// `P = 32768` issues hundreds of millions of queries.
pub trait SizeSource: Sync {
    /// Communicator size.
    fn p(&self) -> usize;
    /// Bytes sent from `src` to `dst`.
    fn size(&self, src: usize, dst: usize) -> usize;
    /// The global maximum block size `N` (the padding bound the algorithms
    /// obtain via allreduce).
    fn n_max(&self) -> usize;

    /// Total bytes `src` sends.
    fn row_sum(&self, src: usize) -> u64 {
        (0..self.p()).map(|d| self.size(src, d) as u64).sum()
    }

    /// Total bytes `dst` receives.
    fn col_sum(&self, dst: usize) -> u64 {
        (0..self.p()).map(|s| self.size(s, dst) as u64).sum()
    }
}

/// A lazy source backed by a keyed [`Distribution`] — O(1) per query, no
/// materialization, usable at `P = 32768`.
#[derive(Debug, Clone, Copy)]
pub struct DistSource {
    /// The distribution scheme.
    pub dist: Distribution,
    /// Workload seed.
    pub seed: u64,
    /// Communicator size.
    pub p: usize,
    /// Maximum block size parameter `N`.
    pub n_cap: usize,
}

impl DistSource {
    /// Convenience constructor.
    pub fn new(dist: Distribution, seed: u64, p: usize, n_cap: usize) -> Self {
        DistSource { dist, seed, p, n_cap }
    }
}

impl SizeSource for DistSource {
    fn p(&self) -> usize {
        self.p
    }

    fn size(&self, src: usize, dst: usize) -> usize {
        self.dist.block_size(self.seed, src, dst, self.p, self.n_cap)
    }

    /// The distribution cap. For every scheme the realized global maximum of
    /// `P²` draws converges to the cap (uniform/windowed/normal are bounded
    /// by it and hit it w.h.p.; power-law's `j = 0` block *is* it).
    fn n_max(&self) -> usize {
        self.n_cap
    }
}

/// A source backed by an explicit matrix (tests, application workloads).
pub struct MatrixSource<'a>(pub &'a SizeMatrix);

impl SizeSource for MatrixSource<'_> {
    fn p(&self) -> usize {
        self.0.p()
    }

    fn size(&self, src: usize, dst: usize) -> usize {
        self.0.get(src, dst)
    }

    fn n_max(&self) -> usize {
        self.0.global_max()
    }

    fn row_sum(&self, src: usize) -> u64 {
        self.0.bytes_sent(src) as u64
    }

    fn col_sum(&self, dst: usize) -> u64 {
        self.0.bytes_received(dst) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_source_matches_sample_rows() {
        let s = DistSource::new(Distribution::Uniform, 77, 32, 200);
        for src in [0usize, 5, 31] {
            let row = Distribution::Uniform.sample_row(77, src, 32, 200);
            for (dst, &sz) in row.iter().enumerate() {
                assert_eq!(s.size(src, dst), sz);
            }
            assert_eq!(s.row_sum(src), row.iter().map(|&x| x as u64).sum::<u64>());
        }
    }

    #[test]
    fn matrix_source_agrees_with_matrix() {
        let m = SizeMatrix::generate(Distribution::Normal, 3, 10, 100);
        let s = MatrixSource(&m);
        assert_eq!(s.p(), 10);
        assert_eq!(s.n_max(), m.global_max());
        assert_eq!(s.col_sum(4), m.bytes_received(4) as u64);
        assert_eq!(s.size(2, 7), m.get(2, 7));
    }

    #[test]
    fn row_and_col_sums_are_transposes() {
        let s = DistSource::new(Distribution::Uniform, 5, 16, 64);
        let total_rows: u64 = (0..16).map(|r| s.row_sum(r)).sum();
        let total_cols: u64 = (0..16).map(|c| s.col_sum(c)).sum();
        assert_eq!(total_rows, total_cols);
    }
}
