//! Spread-out `alltoallv`: non-blocking point-to-point, all pairs in flight.

use bruck_comm::{CommResult, Communicator, MsgBuf};

use super::validate_v;
use crate::common::{add_mod, sub_mod, SPREAD_TAG};
use crate::probe::span;

/// The linear-complexity baseline (§4.1's `Spread-out`): post every send with
/// `MPI_Isend` semantics, then drain every receive. Peers are offset-ordered
/// so that rank `p` talks to `p±i` at round `i`, spreading load.
///
/// Zero-copy send path: the user's send buffer is packed once into a shared
/// region; the `P − 1` in-flight messages are disjoint slices of it, so
/// posting a send allocates and copies nothing.
#[allow(clippy::too_many_arguments)]
pub fn spread_out_alltoallv<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);
    if p == 1 {
        return Ok(());
    }

    let packed = MsgBuf::copy_from_slice(sendbuf); // the one pack copy
    {
        let _probe = span("spread_out.send");
        for i in 1..p {
            let dest = add_mod(me, i, p);
            comm.isend_buf(
                dest,
                SPREAD_TAG,
                packed.slice(sdispls[dest]..sdispls[dest] + sendcounts[dest]),
            )?;
        }
    }
    let _probe = span("spread_out.recv");
    for i in 1..p {
        let src = sub_mod(me, i, p);
        let n = comm.recv_into(
            src,
            SPREAD_TAG,
            &mut recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]],
        )?;
        debug_assert_eq!(n, recvcounts[src], "peer sent unexpected block size");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallvAlgorithm::SpreadOut;

    #[test]
    fn correct_for_all_communicator_sizes() {
        for p in TEST_SIZES {
            run_and_check(SpreadOut, p, 48, 0xD00D);
        }
    }
}
