#!/bin/sh
# Offline build + test gate. The workspace is hermetic (zero external
# crates), so this must pass with no network access from a fresh checkout.
set -eu
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true
cargo build --workspace --release
cargo test --workspace -q
# Observability conformance gate (DESIGN.md §10): every algorithm × workload
# cell under MeteredComm must match the closed-form model's phase counts,
# message counts, and byte volumes.
cargo test --release -q --test conformance
# Collective-family gate (DESIGN.md §16): the differential gauntlet — every
# allgatherv / reduce_scatter / allreduce schedule vs the naive reference,
# byte-identical across ThreadComm/SimComm/EventComm, schedule-independent
# over 16 sim seeds, and message/byte-exact against the closed-form model
# traces (a miscounted trace must fail with a precise diagnostic) — plus the
# seeded property sweep over arbitrary non-uniform counts.
cargo test --release -q --test collectives_gauntlet
cargo test --release -q --test collectives_properties
# Static gates (DESIGN.md §8): source lint with audited allowlist, then the
# protocol-analysis matrix (every algorithm × workload under the model
# communicator). Both exit non-zero on any unallowlisted finding.
cargo run --release -p bruck-check --bin bruck-lint
cargo run --release -p bruck-check --bin bruck-check
# Dynamic fault-tolerance gate (DESIGN.md §9): the algorithm × fault-plan
# soak matrix under a watchdog, asserting the crash-only property. Seeds can
# be overridden with BRUCK_CHAOS_SEEDS=1,2,3.
cargo run --release -p bruck-check --bin bruck-chaos -- --smoke
# Self-healing recovery gate (DESIGN.md §14): every alltoallv algorithm ×
# crash phase class (negotiate/pack/data/unpack) on a 5-rank simulated world
# with a scripted victim, driving detect -> agree -> shrink -> retry to a
# typed Recovered ending — byte-correct on the survivor view, same-seed
# digest-deterministic. Virtual-time MTTR per cell is compared against the
# committed BENCH_PR8.json (> 1.6x drift advisory, > 8x fails; MTTR is
# virtual-time, so drift means the protocol itself changed). Regenerate with:
#   cargo run --release -p bruck-check --bin bruck-chaos -- --recovery-smoke --out BENCH_PR8.json
cargo run --release -p bruck-check --bin bruck-chaos -- --recovery-smoke --check-against BENCH_PR8.json
# Deterministic-simulation gate (DESIGN.md §11): the algorithm × workload ×
# schedule-seed matrix under the cooperative SimComm scheduler. Every cell
# runs twice and must produce byte-identical traces and results; on failure
# the report prints the seed plus a saved trace file under target/bruck-sim/
# and the one-command replay.
cargo run --release -p bruck-check --bin bruck-sim -- --smoke
# Exhaustive-interleaving gate (DESIGN.md §13): DPOR over SimComm walks every
# inequivalent schedule of the tiny-world matrix (the report prints explored
# vs. inequivalent vs. naive counts per cell and requires >=10x pruning),
# and the event-runtime wakeup audit checks every worker-pick interleaving
# of the protocol scenarios against the vector-clock invariants. The second
# run arms the seeded lost-wakeup bug and fails unless the auditor finds it
# and shrinks the witness.
cargo run --release -p bruck-check --bin bruck-verify -- --smoke
cargo run --release -p bruck-check --bin bruck-verify -- --with-bug
# Bench smoke with observability artifacts: BENCH_PR4.json (per-cell report,
# metering overhead advisory) and BENCH_PR4.trace.json (chrome trace_events).
# Exits non-zero on any metering consistency error.
cargo run --release -p bruck-bench --bin smoke -- BENCH_PR4.json BENCH_PR4.trace.json
# Event-runtime scale gate (DESIGN.md §12): the P = 4096 log-phase cells on
# EventComm's bounded worker pool, compared against the committed artifact.
# A cell > 1.6x slower than BENCH_PR6.json prints an advisory; > 8x fails —
# the fatal bar only catches structural regressions (e.g. an O(P) scan
# reintroduced on the deposit path), not shared-CI wall-clock noise. The
# committed artifact itself is regenerated with:
#   cargo run --release -p bruck-bench --bin bruck-scale -- --out BENCH_PR6.json
cargo run --release -p bruck-bench --bin bruck-scale -- --smoke --check-against BENCH_PR6.json
# Auto-tuner gate (DESIGN.md §15): the configurable engine's candidate set on
# EventComm (production snap-dispatch entry point inside the measurement),
# wall clocks fed through the observe -> refit -> select state machine, each
# cell compared to the committed BENCH_PR9.json with the same advisory/fatal
# bars as bruck-scale. The committed artifact and tuning table regenerate with:
#   cargo run --release -p bruck-bench --bin bruck-tune -- --smoke --out BENCH_PR9.json --table tuning.table
cargo run --release -p bruck-bench --bin bruck-tune -- --smoke --check-against BENCH_PR9.json
