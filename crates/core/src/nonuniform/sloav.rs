//! SLOAV (Xu et al. [44]) reimplementation — the prior log-time non-uniform
//! all-to-all that two-phase Bruck improves upon.
//!
//! Faithful to the structural choices §6.1 criticizes, so the benchmarks can
//! quantify each improvement:
//!
//! 1. **Combined metadata**: each step sends one message whose payload is the
//!    block-size array *packed together with* the data blocks, preceded by a
//!    size-of-combined-buffer exchange — costing an extra pack on the sender
//!    and an unpack on the receiver (two-phase Bruck decouples them instead).
//! 2. **Two-layer buffer management**: intermediate blocks live in a pointer
//!    array of individually sized views (two-phase Bruck's monolithic `W`
//!    has neither the pointer array nor the per-step indirection). With the
//!    `MsgBuf` transport the views are reference-counted slices of each
//!    step's received region rather than fresh allocations, but the
//!    pointer-chasing layout §6.1 criticizes is preserved.
//! 3. **Final scan**: blocks are keyed by Bruck *offset* and only copied to
//!    their destination positions in a final scan over all `P` blocks
//!    (two-phase Bruck preempts final locations and delivers in place).

use bruck_comm::{CommError, CommResult, Communicator, MsgBuf};

use super::validate_v;
use crate::common::{add_mod, ceil_log2, data_tag, meta_tag, step_rel_indices, sub_mod};

/// SLOAV-style non-uniform all-to-all (same contract as `MPI_Alltoallv`).
#[allow(clippy::too_many_arguments)]
pub fn sloav_alltoallv<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    // Two-layer intermediate storage: temp[i] holds the block currently at
    // Bruck offset i, if it has been received; otherwise the block is still
    // the original send-buffer block for destination (me + i) % P.
    let mut temp: Vec<Option<MsgBuf>> = vec![None; p];
    let mut sizes: Vec<usize> = (0..p).map(|i| sendcounts[add_mod(me, i, p)]).collect();

    for k in 0..ceil_log2(p) {
        let hop = 1usize << k;
        let dest = add_mod(me, hop, p); // basic-Bruck direction
        let src = sub_mod(me, hop, p);
        let offsets: Vec<usize> = step_rel_indices(p, k).collect();

        // Pack the combined buffer: block-size array, then the blocks.
        let mut combined = Vec::with_capacity(offsets.len() * 4);
        for &i in &offsets {
            let sz = u32::try_from(sizes[i])
                .map_err(|_| CommError::BadArgument("block size exceeds u32 metadata"))?;
            combined.extend_from_slice(&sz.to_le_bytes());
        }
        for &i in &offsets {
            match &temp[i] {
                Some(block) => combined.extend_from_slice(block),
                None => {
                    let d = sdispls[add_mod(me, i, p)];
                    combined.extend_from_slice(&sendbuf[d..d + sizes[i]]);
                }
            }
        }

        // Meta phase: announce the combined-buffer size; data phase: send it.
        // Both travel as `MsgBuf`s — the pack above is the only copy.
        let total = (combined.len() as u64).to_le_bytes();
        let their_total = comm.sendrecv_buf(
            dest,
            meta_tag(k),
            MsgBuf::copy_from_slice(&total),
            src,
            meta_tag(k),
        )?;
        let their_total = u64::from_le_bytes(
            their_total.as_slice().try_into().expect("8-byte size header"),
        ) as usize;
        let got =
            comm.sendrecv_buf(dest, data_tag(k), MsgBuf::from_vec(combined), src, data_tag(k))?;
        if got.len() != their_total {
            return Err(CommError::BadArgument("combined buffer length mismatch"));
        }

        // Unpack: split metadata from data, then re-slice each block into the
        // pointer array (a refcounted view per block — SLOAV's two-layer
        // layout without the per-block allocations).
        let meta_len = offsets.len() * 4;
        let mut at = meta_len;
        for (idx, &i) in offsets.iter().enumerate() {
            let sz = u32::from_le_bytes(
                got[idx * 4..idx * 4 + 4].try_into().expect("4-byte metadata entry"),
            ) as usize;
            temp[i] = Some(got.slice(at..at + sz));
            sizes[i] = sz;
            at += sz;
        }
        if at != got.len() {
            return Err(CommError::BadArgument("combined payload length mismatch"));
        }
    }

    // Final scan (+ implicit rotation): the block at offset i came from rank
    // (me − i) mod P; copy everything into the receive buffer.
    for i in 0..p {
        let src_rank = sub_mod(me, i, p);
        let want = recvcounts[src_rank];
        let out = &mut recvbuf[rdispls[src_rank]..rdispls[src_rank] + want];
        match &temp[i] {
            Some(block) => {
                debug_assert_eq!(block.len(), want, "routed size disagrees with recvcounts");
                out.copy_from_slice(block);
            }
            None => {
                // Only the self block (offset 0) never travels.
                debug_assert_eq!(i, 0);
                let d = sdispls[add_mod(me, i, p)];
                out.copy_from_slice(&sendbuf[d..d + want]);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, run_and_check_matrix, TEST_SIZES};
    use super::super::AlltoallvAlgorithm::Sloav;
    use bruck_workload::{Distribution, SizeMatrix};

    #[test]
    fn correct_for_all_communicator_sizes() {
        for p in TEST_SIZES {
            run_and_check(Sloav, p, 32, 0x5105);
        }
    }

    #[test]
    fn correct_for_skewed_distribution() {
        let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 5, 11, 80);
        run_and_check_matrix(Sloav, &m);
    }

    #[test]
    fn zero_blocks() {
        run_and_check_matrix(Sloav, &SizeMatrix::uniform(5, 0));
    }
}
