//! Full `P×P` block-size matrices for small-to-moderate process counts.

use crate::Distribution;

/// A dense `P×P` matrix of block sizes: `matrix[src][dst]` is the number of
/// bytes rank `src` sends to rank `dst`.
///
/// Sizes are stored as `u32` (the paper's sweeps top out at `N = 2048` bytes)
/// so that a `P = 4096` matrix stays at 64 MiB. For `P` beyond that the cost
/// model samples rows lazily via [`Distribution::sample_row`] instead of
/// materializing a matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeMatrix {
    p: usize,
    sizes: Vec<u32>,
}

impl SizeMatrix {
    /// Generate a matrix for `p` ranks from `dist` with maximum size `n_max`.
    pub fn generate(dist: Distribution, seed: u64, p: usize, n_max: usize) -> Self {
        let mut sizes = Vec::with_capacity(p * p);
        for src in 0..p {
            let row = dist.sample_row(seed, src, p, n_max);
            sizes.extend(row.into_iter().map(|s| {
                u32::try_from(s).expect("block size exceeds u32; use lazy row sampling")
            }));
        }
        SizeMatrix { p, sizes }
    }

    /// Build from an explicit row-major size table (tests, custom workloads).
    pub fn from_rows(rows: Vec<Vec<usize>>) -> Self {
        let p = rows.len();
        let mut sizes = Vec::with_capacity(p * p);
        for row in &rows {
            assert_eq!(row.len(), p, "size matrix must be square");
            sizes.extend(row.iter().map(|&s| u32::try_from(s).expect("block size exceeds u32")));
        }
        SizeMatrix { p, sizes }
    }

    /// A uniform matrix: every block exactly `n` bytes.
    pub fn uniform(p: usize, n: usize) -> Self {
        SizeMatrix { p, sizes: vec![u32::try_from(n).expect("block size exceeds u32"); p * p] }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Bytes sent from `src` to `dst`.
    #[inline]
    pub fn get(&self, src: usize, dst: usize) -> usize {
        self.sizes[src * self.p + dst] as usize
    }

    /// Row view: all sizes `src` sends, indexed by destination.
    pub fn row(&self, src: usize) -> impl Iterator<Item = usize> + '_ {
        self.sizes[src * self.p..(src + 1) * self.p].iter().map(|&s| s as usize)
    }

    /// Row as a `Vec<usize>` (the `sendcounts` array of an `alltoallv`).
    pub fn sendcounts(&self, src: usize) -> Vec<usize> {
        self.row(src).collect()
    }

    /// Column as a `Vec<usize>` (the `recvcounts` array of an `alltoallv`).
    pub fn recvcounts(&self, dst: usize) -> Vec<usize> {
        (0..self.p).map(|src| self.get(src, dst)).collect()
    }

    /// Largest block size in the whole matrix (the paper's global `N`).
    pub fn global_max(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0) as usize
    }

    /// Total bytes rank `src` sends (including its self-block).
    pub fn bytes_sent(&self, src: usize) -> usize {
        self.row(src).sum()
    }

    /// Total bytes rank `dst` receives (including its self-block).
    pub fn bytes_received(&self, dst: usize) -> usize {
        self.recvcounts(dst).iter().sum()
    }

    /// Total bytes crossing the communicator (sum of all blocks).
    pub fn total_bytes(&self) -> usize {
        self.sizes.iter().map(|&s| s as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_sample_row() {
        let m = SizeMatrix::generate(Distribution::Uniform, 5, 8, 100);
        for src in 0..8 {
            let row = Distribution::Uniform.sample_row(5, src, 8, 100);
            assert_eq!(m.sendcounts(src), row);
        }
    }

    #[test]
    fn recvcounts_is_column() {
        let rows = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let m = SizeMatrix::from_rows(rows);
        assert_eq!(m.recvcounts(0), vec![1, 4, 7]);
        assert_eq!(m.recvcounts(2), vec![3, 6, 9]);
        assert_eq!(m.bytes_sent(1), 15);
        assert_eq!(m.bytes_received(1), 15);
        assert_eq!(m.total_bytes(), 45);
        assert_eq!(m.global_max(), 9);
    }

    #[test]
    fn uniform_matrix() {
        let m = SizeMatrix::uniform(4, 32);
        assert_eq!(m.total_bytes(), 4 * 4 * 32);
        assert_eq!(m.global_max(), 32);
        assert!(m.row(2).all(|s| s == 32));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn from_rows_rejects_ragged() {
        SizeMatrix::from_rows(vec![vec![1, 2], vec![3]]);
    }
}
