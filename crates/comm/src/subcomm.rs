//! Subcommunicators: `MPI_Comm_split` for the threaded runtime.
//!
//! A [`SubComm`] presents a contiguous `0..size` rank space over a subset of
//! a parent communicator's ranks. Traffic is isolated from the parent (and
//! from sibling groups that happen to reuse a rank pair, which cannot occur
//! under a partition split, but can across *successive* splits) by folding a
//! context id into the message tag, the same role MPI's communicator
//! contexts play.

use crate::{CommError, CommResult, Communicator, MsgBuf, Tag};

/// Bits of the tag reserved for the subcommunicator context.
const CTX_SHIFT: u32 = 24;
/// Maximum user tag usable through a [`SubComm`].
pub const SUBCOMM_MAX_TAG: Tag = 1 << CTX_SHIFT;
const CTX_MASK: Tag = 0x3F;

/// A view of a subset of a parent communicator's ranks.
pub struct SubComm<'a, C: Communicator + ?Sized> {
    parent: &'a C,
    /// Parent ranks of the members, in subcommunicator rank order.
    members: Vec<usize>,
    /// This rank's position in `members`.
    my_index: usize,
    /// Context id folded into tags (derived from the split color).
    ctx: Tag,
}

impl<'a, C: Communicator + ?Sized> SubComm<'a, C> {
    /// Collective split: ranks with equal `color` form one subcommunicator,
    /// ordered by `(key, parent rank)` — the `MPI_Comm_split` contract.
    ///
    /// Every rank of `parent` must call this (it allgathers the colors).
    pub fn split(parent: &'a C, color: u64, key: u64) -> CommResult<Self> {
        let me = parent.rank();
        // Pack (color-hash collisions are fine for grouping — we compare the
        // actual color values gathered below).
        let colors = parent.allgather_u64(color)?;
        let keys = parent.allgather_u64(key)?;
        let mut members: Vec<usize> =
            (0..parent.size()).filter(|&r| colors[r] == color).collect();
        members.sort_by_key(|&r| (keys[r], r));
        let my_index =
            members.iter().position(|&r| r == me).expect("caller is a member of its own color");
        // Context: derived from the color so sibling groups differ; 6 bits,
        // never 0 (0 is effectively the parent's own context).
        let ctx = ((splitmix(color) as Tag) & CTX_MASK).max(1);
        Ok(SubComm { parent, members, my_index, ctx })
    }

    /// Build from an explicit member list (every member must call this with
    /// the same list and a matching `ctx`). Useful for leader groups.
    pub fn from_members(parent: &'a C, members: Vec<usize>, ctx: Tag) -> CommResult<Self> {
        let me = parent.rank();
        let my_index = members
            .iter()
            .position(|&r| r == me)
            .ok_or(CommError::BadArgument("caller not in member list"))?;
        for &m in &members {
            parent.check_rank(m)?;
        }
        Ok(SubComm { parent, members, my_index, ctx: ctx & CTX_MASK })
    }

    /// The parent rank of subcommunicator rank `r`.
    pub fn parent_rank(&self, r: usize) -> usize {
        self.members[r]
    }

    /// The member list (parent ranks, in subcommunicator order).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    fn map_tag(&self, tag: Tag) -> CommResult<Tag> {
        if tag >= crate::RESERVED_TAG_BASE {
            // Internal collective tags keep their reserved range but are
            // contexted in the bits below it.
            Ok(tag ^ (self.ctx << CTX_SHIFT))
        } else if tag >= SUBCOMM_MAX_TAG {
            Err(CommError::BadArgument("subcommunicator tags must be below 1 << 24"))
        } else {
            Ok(tag | (self.ctx << CTX_SHIFT))
        }
    }
}

/// The repaired communicator after a membership shrink: survivors of an
/// agreed eviction ([`crate::agree_survivors`]) renumbered into a dense
/// `0..survivors.len()` world over the original parent communicator.
///
/// This is [`SubComm`] machinery with recovery semantics layered on:
///
/// * The member list is the **agreed survivor set** — every survivor builds
///   the identical communicator from [`crate::AgreeOutcome::survivors`]
///   with no further handshake (agreement already synchronized the view;
///   a collective split here could itself trip over the dead ranks).
/// * The tag context is derived from the **membership epoch**
///   (`(epoch mod 63) + 1`), so consecutive epochs always map the same
///   logical tag to different wire tags: straggler traffic from the epoch
///   that died can never be matched by the repaired world's exchanges.
/// * [`ShrinkComm::shrink_rank`] / [`ShrinkComm::parent_rank`] translate
///   between the worlds, so pending per-destination state (plans, buffers)
///   can be remapped instead of rebuilt — see
///   [`crate::ExchangePlan::remap_survivors`].
pub struct ShrinkComm<'a, C: Communicator + ?Sized> {
    sub: SubComm<'a, C>,
    epoch: u32,
}

impl<'a, C: Communicator + ?Sized> ShrinkComm<'a, C> {
    /// Build the epoch-`epoch` repaired world over `parent` from the agreed
    /// `survivors` (sorted parent ranks; must include the caller). Purely
    /// local — no communication.
    pub fn new(parent: &'a C, survivors: Vec<usize>, epoch: u32) -> CommResult<Self> {
        if survivors.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CommError::BadArgument("survivors must be sorted and unique"));
        }
        let ctx = (epoch % 63) + 1;
        let sub = SubComm::from_members(parent, survivors, ctx)?;
        Ok(ShrinkComm { sub, epoch })
    }

    /// The membership epoch this communicator belongs to.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The survivor set (parent ranks, in dense rank order).
    pub fn survivors(&self) -> &[usize] {
        self.sub.members()
    }

    /// The parent rank of dense survivor rank `r`.
    pub fn parent_rank(&self, r: usize) -> usize {
        self.sub.parent_rank(r)
    }

    /// The dense survivor rank of `parent_rank`, or `None` if it was
    /// evicted.
    pub fn shrink_rank(&self, parent_rank: usize) -> Option<usize> {
        self.sub.members().iter().position(|&m| m == parent_rank)
    }
}

impl<C: Communicator + ?Sized> Communicator for ShrinkComm<'_, C> {
    fn rank(&self) -> usize {
        self.sub.rank()
    }

    fn size(&self) -> usize {
        self.sub.size()
    }

    fn now(&self) -> std::time::Duration {
        self.sub.now()
    }

    fn sleep(&self, d: std::time::Duration) {
        self.sub.sleep(d)
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.sub.send_buf(dest, tag, buf)
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.sub.recv_buf(src, tag)
    }

    fn recv_buf_timeout(&self, src: usize, tag: Tag, timeout: std::time::Duration) -> CommResult<MsgBuf> {
        self.sub.recv_buf_timeout(src, tag, timeout)
    }

    fn send(&self, dest: usize, tag: Tag, data: &[u8]) -> CommResult<()> {
        self.sub.send(dest, tag, data)
    }

    fn recv(&self, src: usize, tag: Tag) -> CommResult<Vec<u8>> {
        self.sub.recv(src, tag)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        self.sub.recv_into(src, tag, buf)
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.sub.probe(src, tag)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<C: Communicator + ?Sized> Communicator for SubComm<'_, C> {
    fn rank(&self) -> usize {
        self.my_index
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn now(&self) -> std::time::Duration {
        self.parent.now()
    }

    fn sleep(&self, d: std::time::Duration) {
        self.parent.sleep(d)
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.check_rank(dest)?;
        self.parent.send_buf(self.members[dest], self.map_tag(tag)?, buf)
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.check_rank(src)?;
        self.parent.recv_buf(self.members[src], self.map_tag(tag)?)
    }

    fn send(&self, dest: usize, tag: Tag, data: &[u8]) -> CommResult<()> {
        self.check_rank(dest)?;
        self.parent.send(self.members[dest], self.map_tag(tag)?, data)
    }

    fn recv(&self, src: usize, tag: Tag) -> CommResult<Vec<u8>> {
        self.check_rank(src)?;
        self.parent.recv(self.members[src], self.map_tag(tag)?)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        self.check_rank(src)?;
        self.parent.recv_into(self.members[src], self.map_tag(tag)?, buf)
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.check_rank(src)?;
        self.parent.probe(self.members[src], self.map_tag(tag)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReduceOp, ThreadComm};

    #[test]
    fn split_partitions_and_reranks() {
        // 6 ranks → even/odd groups; key reverses order within the group.
        let out = ThreadComm::run(6, |comm| {
            let me = comm.rank();
            let sub = SubComm::split(comm, (me % 2) as u64, (100 - me) as u64).unwrap();
            (me, sub.rank(), sub.size(), sub.members().to_vec())
        });
        for (me, sub_rank, sub_size, members) in out {
            assert_eq!(sub_size, 3);
            // Reverse key order: highest parent rank is sub rank 0.
            let expect: Vec<usize> =
                if me % 2 == 0 { vec![4, 2, 0] } else { vec![5, 3, 1] };
            assert_eq!(members, expect);
            assert_eq!(members[sub_rank], me);
        }
    }

    #[test]
    fn subcomm_collectives_are_isolated_per_group() {
        let sums = ThreadComm::run(8, |comm| {
            let me = comm.rank();
            let sub = SubComm::split(comm, (me / 4) as u64, me as u64).unwrap();
            sub.allreduce_u64(me as u64, ReduceOp::Sum).unwrap()
        });
        // Group 0 = ranks 0..4 (sum 6); group 1 = ranks 4..8 (sum 22).
        assert_eq!(sums, vec![6, 6, 6, 6, 22, 22, 22, 22]);
    }

    #[test]
    fn subcomm_p2p_routes_through_parent_ranks() {
        let got = ThreadComm::run(4, |comm| {
            let me = comm.rank();
            let sub = SubComm::split(comm, (me % 2) as u64, me as u64).unwrap();
            // Within each 2-rank group: ping the other member.
            let peer = 1 - sub.rank();
            sub.send(peer, 5, &[me as u8]).unwrap();
            sub.recv(peer, 5).unwrap()[0]
        });
        assert_eq!(got, vec![2, 3, 0, 1]);
    }

    #[test]
    fn concurrent_parent_and_sub_traffic_do_not_cross() {
        ThreadComm::run(4, |comm| {
            let me = comm.rank();
            let sub = SubComm::split(comm, 7, me as u64).unwrap(); // all in one group
            // Same (src, dst, tag) on parent and sub simultaneously.
            let peer = (me + 1) % 4;
            let back = (me + 3) % 4;
            comm.send(peer, 9, &[1]).unwrap();
            sub.send(peer, 9, &[2]).unwrap();
            assert_eq!(sub.recv(back, 9).unwrap(), vec![2]);
            assert_eq!(comm.recv(back, 9).unwrap(), vec![1]);
        });
    }

    #[test]
    fn from_members_builds_leader_groups() {
        let out = ThreadComm::run(6, |comm| {
            let me = comm.rank();
            if me % 3 == 0 {
                // Leaders 0 and 3 form their own communicator.
                let leaders = SubComm::from_members(comm, vec![0, 3], 9).unwrap();
                Some(leaders.allreduce_u64(me as u64, ReduceOp::Sum).unwrap())
            } else {
                None
            }
        });
        assert_eq!(out[0], Some(3));
        assert_eq!(out[3], Some(3));
        assert!(out[1].is_none());
    }

    #[test]
    fn oversized_tags_rejected() {
        ThreadComm::run(2, |comm| {
            let sub = SubComm::split(comm, 0, comm.rank() as u64).unwrap();
            assert!(sub.send(0, SUBCOMM_MAX_TAG, &[]).is_err());
        });
    }

    #[test]
    fn shrink_renumbers_survivors_densely() {
        let out = ThreadComm::run(5, |comm| {
            let me = comm.rank();
            if me == 2 {
                return None; // the evicted rank builds nothing
            }
            let shrink = ShrinkComm::new(comm, vec![0, 1, 3, 4], 7).unwrap();
            // Ring ping on the dense world proves translation works.
            let peer = (shrink.rank() + 1) % shrink.size();
            shrink.send(peer, 3, &[me as u8]).unwrap();
            let from = shrink.recv((shrink.rank() + shrink.size() - 1) % shrink.size(), 3).unwrap();
            Some((shrink.rank(), shrink.size(), shrink.shrink_rank(4), from[0]))
        });
        assert_eq!(out[0], Some((0, 4, Some(3), 4)));
        assert_eq!(out[1], Some((1, 4, Some(3), 0)));
        assert_eq!(out[3], Some((2, 4, Some(3), 1)));
        assert_eq!(out[4], Some((3, 4, Some(3), 3)));
    }

    #[test]
    fn consecutive_epochs_are_tag_isolated() {
        // Same members, same logical tag, two successive epochs: each
        // epoch's receive must match only its own epoch's send.
        ThreadComm::run(2, |comm| {
            let me = comm.rank();
            let old = ShrinkComm::new(comm, vec![0, 1], 4).unwrap();
            let new = ShrinkComm::new(comm, vec![0, 1], 5).unwrap();
            let peer = 1 - me;
            old.send(peer, 11, &[b'o', me as u8]).unwrap();
            new.send(peer, 11, &[b'n', me as u8]).unwrap();
            assert_eq!(new.recv(peer, 11).unwrap(), vec![b'n', peer as u8]);
            assert_eq!(old.recv(peer, 11).unwrap(), vec![b'o', peer as u8]);
        });
    }

    #[test]
    fn shrink_collectives_run_on_the_dense_world() {
        let sums = ThreadComm::run(4, |comm| {
            if comm.rank() == 1 {
                return 0;
            }
            let shrink = ShrinkComm::new(comm, vec![0, 2, 3], 1).unwrap();
            shrink.allreduce_u64(comm.rank() as u64, ReduceOp::Sum).unwrap()
        });
        assert_eq!(sums, vec![5, 0, 5, 5]);
    }

    #[test]
    fn shrink_rejects_unsorted_or_foreign_survivor_lists() {
        ThreadComm::run(3, |comm| {
            if comm.rank() == 0 {
                assert!(ShrinkComm::new(comm, vec![1, 0], 0).is_err(), "unsorted");
                assert!(ShrinkComm::new(comm, vec![1, 2], 0).is_err(), "caller evicted");
            }
        });
    }
}
