//! Parameter sweeps and crossover extraction (Figures 6–10, 13 and the
//! empirical performance model of Figure 9).

use crate::par::par_map;
use crate::{nonuniform_trace, DistSource, MachineModel, NonuniformAlgo, RankSample};
use bruck_workload::Distribution;

/// Predicted time of one algorithm on one workload point.
pub fn predict(
    algo: NonuniformAlgo,
    dist: Distribution,
    seed: u64,
    p: usize,
    n: usize,
    machine: &MachineModel,
) -> f64 {
    let source = DistSource::new(dist, seed, p, n);
    nonuniform_trace(algo, &source, &RankSample::auto(p)).time(machine)
}

/// One evaluated point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Communicator size.
    pub p: usize,
    /// Maximum block size (bytes).
    pub n: usize,
    /// Algorithm evaluated.
    pub algo: NonuniformAlgo,
    /// Predicted seconds.
    pub seconds: f64,
}

/// Evaluate `algos × ps × ns` in parallel (scoped threads via [`par_map`]);
/// output is sorted by `(p, n, algo order)` for stable figure rendering.
pub fn sweep(
    algos: &[NonuniformAlgo],
    dist: Distribution,
    seed: u64,
    ps: &[usize],
    ns: &[usize],
    machine: &MachineModel,
) -> Vec<SweepPoint> {
    let grid: Vec<(usize, usize, usize, NonuniformAlgo)> = ps
        .iter()
        .flat_map(|&p| ns.iter().map(move |&n| (p, n)))
        .flat_map(|(p, n)| algos.iter().enumerate().map(move |(ai, &algo)| (p, n, ai, algo)))
        .collect();
    let mut points: Vec<(usize, SweepPoint)> = par_map(&grid, |&(p, n, ai, algo)| {
        let seconds = predict(algo, dist, seed, p, n, machine);
        (ai, SweepPoint { p, n, algo, seconds })
    });
    points.sort_by_key(|(ai, a)| (a.p, a.n, *ai));
    points.into_iter().map(|(_, sp)| sp).collect()
}

/// The largest `n` in `n_grid` for which `a` is predicted to beat `b`
/// (Figure 9's crossover threshold). `None` if `a` never wins.
pub fn crossover_n(
    a: NonuniformAlgo,
    b: NonuniformAlgo,
    dist: Distribution,
    seed: u64,
    p: usize,
    n_grid: &[usize],
    machine: &MachineModel,
) -> Option<usize> {
    let wins: Vec<(usize, bool)> = par_map(n_grid, |&n| {
        (n, predict(a, dist, seed, p, n, machine) < predict(b, dist, seed, p, n, machine))
    });
    wins.into_iter().filter(|&(_, w)| w).map(|(n, _)| n).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 2022;

    #[test]
    fn sweep_covers_the_grid() {
        let m = MachineModel::theta_like();
        let pts = sweep(
            &[NonuniformAlgo::Vendor, NonuniformAlgo::TwoPhaseBruck],
            Distribution::Uniform,
            SEED,
            &[64, 128],
            &[16, 64],
            &m,
        );
        assert_eq!(pts.len(), 2 * 2 * 2);
        assert!(pts.iter().all(|pt| pt.seconds > 0.0));
        // Sorted by (p, n).
        assert!(pts.windows(2).all(|w| (w[0].p, w[0].n) <= (w[1].p, w[1].n)));
    }

    #[test]
    fn two_phase_beats_vendor_at_small_n_loses_at_huge_n() {
        let m = MachineModel::theta_like();
        let p = 1024;
        let small = predict(NonuniformAlgo::TwoPhaseBruck, Distribution::Uniform, SEED, p, 64, &m);
        let vendor_small = predict(NonuniformAlgo::Vendor, Distribution::Uniform, SEED, p, 64, &m);
        assert!(small < vendor_small, "two-phase must win at N=64: {small} vs {vendor_small}");
        let huge =
            predict(NonuniformAlgo::TwoPhaseBruck, Distribution::Uniform, SEED, p, 1 << 16, &m);
        let vendor_huge =
            predict(NonuniformAlgo::Vendor, Distribution::Uniform, SEED, p, 1 << 16, &m);
        assert!(huge > vendor_huge, "vendor must win at N=64K: {huge} vs {vendor_huge}");
    }

    #[test]
    fn crossover_declines_with_p() {
        // Figure 9's main trend: the N range where two-phase wins shrinks as
        // P grows.
        let m = MachineModel::theta_like();
        let grid: Vec<usize> = (4..=14).map(|e| 1usize << e).collect();
        let at = |p| {
            crossover_n(
                NonuniformAlgo::TwoPhaseBruck,
                NonuniformAlgo::Vendor,
                Distribution::Uniform,
                SEED,
                p,
                &grid,
                &m,
            )
            .unwrap_or(0)
        };
        let lo = at(512);
        let hi = at(16384);
        assert!(lo >= hi, "crossover at P=512 ({lo}) must be ≥ at P=16384 ({hi})");
        assert!(lo >= 256, "two-phase should win well past N=256 at P=512 (got {lo})");
    }

    #[test]
    fn padded_wins_only_for_tiny_blocks() {
        let m = MachineModel::theta_like();
        let p = 1024;
        let grid = [8usize, 16, 32, 64, 128, 256, 512, 1024];
        let cross = crossover_n(
            NonuniformAlgo::PaddedBruck,
            NonuniformAlgo::TwoPhaseBruck,
            Distribution::Uniform,
            SEED,
            p,
            &grid,
            &m,
        );
        // Padded may win at the small end but must lose by N=512.
        if let Some(n) = cross {
            assert!(n <= 256, "padded Bruck should stop winning by N=256, got {n}");
        }
        let padded = predict(NonuniformAlgo::PaddedBruck, Distribution::Uniform, SEED, p, 1024, &m);
        let two = predict(NonuniformAlgo::TwoPhaseBruck, Distribution::Uniform, SEED, p, 1024, &m);
        assert!(two < padded, "two-phase must dominate padded at N=1024");
    }
}
