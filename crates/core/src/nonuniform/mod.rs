//! Non-uniform all-to-all (`MPI_Alltoallv` signature): §3 of the paper.
//!
//! Contract (identical to `MPI_Alltoallv`): rank `p` sends
//! `sendbuf[sdispls[i] .. sdispls[i] + sendcounts[i]]` to rank `i` and
//! receives rank `i`'s block for `p` into
//! `recvbuf[rdispls[i] .. rdispls[i] + recvcounts[i]]`. As in MPI, the caller
//! already knows `recvcounts` (apply [`bruck_comm::Communicator::alltoall_counts`]
//! first if it does not).

mod adaptive;
mod alltoallw;
pub(crate) mod engine;
mod hierarchical;
mod padded;
mod padded_alltoall;
mod recovering;
mod reference;
mod resilient;
mod sloav;
mod spread_out;
mod timed;
mod two_phase;
mod two_stage;
mod vendor;

pub use adaptive::adaptive_alltoallv;
pub use alltoallw::alltoallw;
pub use engine::{
    configurable_alltoallv, configurable_alltoallv_general, EngineConfig, EngineTopology,
    IntermediateLayout, PaddingRule,
};
pub use hierarchical::{hierarchical_alltoallv, DEFAULT_GROUP_SIZE};
pub use padded::padded_bruck;
pub use padded_alltoall::padded_alltoall;
pub use recovering::{recovering_alltoallv, Mttr, Recovery, RecoveringConfig, RecoveryOutcome};
pub use reference::reference_alltoallv;
pub use resilient::{resilient_alltoallv, ExchangeOutcome, PartialExchange, ResilientConfig};
pub use sloav::sloav_alltoallv;
pub use spread_out::spread_out_alltoallv;
pub use timed::{sloav_alltoallv_timed, two_phase_bruck_timed, NonuniformPhases};
pub use two_phase::two_phase_bruck;
pub use two_stage::{piece_len, piece_offset, ranka_two_stage_alltoallv};
pub use vendor::{vendor_alltoallv, VENDOR_WINDOW};

use bruck_comm::{CommError, CommResult, Communicator};

/// The non-uniform algorithms evaluated in §4 (Figures 6–13) plus the SLOAV
/// baseline reimplementation (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlltoallvAlgorithm {
    /// Pairwise oracle for tests.
    Reference,
    /// Non-blocking point-to-point, all pairs in flight.
    SpreadOut,
    /// Throttled spread-out standing in for the vendor `MPI_Alltoallv`.
    Vendor,
    /// Pad to uniform, Bruck exchange, scan (§3.1).
    PaddedBruck,
    /// Pad to uniform, vendor-style uniform all-to-all, scan (§4.1's
    /// `PaddedAlltoall` baseline).
    PaddedAlltoall,
    /// Coupled metadata/data exchange over a monolithic working buffer (§3.2).
    TwoPhaseBruck,
    /// Reimplementation of SLOAV (Xu et al.) with its combined-buffer metadata, block
    /// pointer array, and final scan (§6.1 describes these drawbacks).
    Sloav,
    /// Leader-based hierarchical exchange (related work, §6) with groups of
    /// [`DEFAULT_GROUP_SIZE`].
    Hierarchical,
    /// Ranka et al.'s balanced two-stage decomposition (related work, §6).
    RankaTwoStage,
}

impl AlltoallvAlgorithm {
    /// All algorithms, baselines first.
    pub const ALL: [AlltoallvAlgorithm; 9] = [
        AlltoallvAlgorithm::Reference,
        AlltoallvAlgorithm::SpreadOut,
        AlltoallvAlgorithm::Vendor,
        AlltoallvAlgorithm::PaddedBruck,
        AlltoallvAlgorithm::PaddedAlltoall,
        AlltoallvAlgorithm::TwoPhaseBruck,
        AlltoallvAlgorithm::Sloav,
        AlltoallvAlgorithm::Hierarchical,
        AlltoallvAlgorithm::RankaTwoStage,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AlltoallvAlgorithm::Reference => "Reference",
            AlltoallvAlgorithm::SpreadOut => "Spread-out",
            AlltoallvAlgorithm::Vendor => "MPI_Alltoallv",
            AlltoallvAlgorithm::PaddedBruck => "Padded Bruck",
            AlltoallvAlgorithm::PaddedAlltoall => "PaddedAlltoall",
            AlltoallvAlgorithm::TwoPhaseBruck => "Two-phase Bruck",
            AlltoallvAlgorithm::Sloav => "SLOAV",
            AlltoallvAlgorithm::Hierarchical => "Hierarchical",
            AlltoallvAlgorithm::RankaTwoStage => "Ranka two-stage",
        }
    }
}

/// Dispatch a non-uniform all-to-all by algorithm id — a shim over the
/// configurable engine's named config points (see [`engine`]).
#[allow(clippy::too_many_arguments)]
pub fn alltoallv<C: Communicator + ?Sized>(
    algo: AlltoallvAlgorithm,
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    engine::dispatch_variant(
        algo, comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
    )
}

/// Exclusive prefix sums: the packed displacement array for a counts array.
pub fn packed_displs(counts: &[usize]) -> Vec<usize> {
    let mut displs = Vec::with_capacity(counts.len());
    let mut at = 0;
    for &c in counts {
        displs.push(at);
        at += c;
    }
    displs
}

/// Validate an `alltoallv` argument set; returns `P`.
pub(crate) fn validate_v<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &[u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<usize> {
    let p = comm.size();
    if sendcounts.len() != p || sdispls.len() != p {
        return Err(CommError::BadArgument("sendcounts/sdispls must have length P"));
    }
    if recvcounts.len() != p || rdispls.len() != p {
        return Err(CommError::BadArgument("recvcounts/rdispls must have length P"));
    }
    for i in 0..p {
        if sdispls[i] + sendcounts[i] > sendbuf.len() {
            return Err(CommError::BadArgument("send block out of bounds"));
        }
        if rdispls[i] + recvcounts[i] > recvbuf.len() {
            return Err(CommError::BadArgument("recv block out of bounds"));
        }
    }
    Ok(p)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use bruck_comm::ThreadComm;
    use bruck_workload::SizeMatrix;

    /// Deterministic pattern byte for (source, destination, offset-in-block).
    pub fn pattern(src: usize, dst: usize, idx: usize) -> u8 {
        (src.wrapping_mul(167) ^ dst.wrapping_mul(59) ^ idx.wrapping_mul(13)) as u8
    }

    /// Build rank `src`'s packed (sendbuf, sendcounts, sdispls) for a matrix.
    pub fn build_send(src: usize, m: &SizeMatrix) -> (Vec<u8>, Vec<usize>, Vec<usize>) {
        let counts = m.sendcounts(src);
        let displs = packed_displs(&counts);
        let total: usize = counts.iter().sum();
        let mut buf = vec![0u8; total];
        for dst in 0..m.p() {
            for idx in 0..counts[dst] {
                buf[displs[dst] + idx] = pattern(src, dst, idx);
            }
        }
        (buf, counts, displs)
    }

    /// Check rank `me`'s receive buffer against the matrix and pattern.
    pub fn check_recv(me: usize, m: &SizeMatrix, recvbuf: &[u8], rdispls: &[usize]) {
        for src in 0..m.p() {
            let len = m.get(src, me);
            for idx in 0..len {
                assert_eq!(
                    recvbuf[rdispls[src] + idx],
                    pattern(src, me, idx),
                    "rank {me}: byte {idx} of block from {src} (len {len})"
                );
            }
        }
    }

    /// Run `algo` on every rank for the given size matrix and verify output.
    pub fn run_and_check_matrix(algo: AlltoallvAlgorithm, m: &SizeMatrix) {
        let p = m.p();
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
                .unwrap();
            check_recv(me, m, &recvbuf, &rdispls);
        });
    }

    /// Run `algo` over a generated workload.
    pub fn run_and_check(algo: AlltoallvAlgorithm, p: usize, n_max: usize, seed: u64) {
        let m = SizeMatrix::generate(bruck_workload::Distribution::Uniform, seed, p, n_max);
        run_and_check_matrix(algo, &m);
    }

    /// The sizes every variant must survive: powers of two, odd, prime, one.
    pub const TEST_SIZES: [usize; 9] = [1, 2, 3, 4, 5, 8, 12, 16, 17];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_displs_is_exclusive_prefix_sum() {
        assert_eq!(packed_displs(&[3, 0, 5, 1]), vec![0, 3, 3, 8]);
        assert_eq!(packed_displs(&[]), Vec::<usize>::new());
    }

    #[test]
    fn validate_rejects_out_of_bounds_blocks() {
        bruck_comm::ThreadComm::run(2, |comm| {
            let send = vec![0u8; 4];
            let recv = vec![0u8; 4];
            // block 1 reaches byte 5 > 4.
            let err = validate_v(comm, &send, &[2, 3], &[0, 2], &recv, &[2, 2], &[0, 2]);
            assert!(err.is_err());
        });
    }
}
