//! Bench for the substrate itself: point-to-point latency, collectives, the
//! datatype engine vs. hand-rolled memcpy packing (the ablation behind the
//! paper's Figure 2 finding), and the zero-copy `MsgBuf` send path vs. the
//! compat copying path on a large-message all-to-all. Std-only harness.

use std::time::{Duration, Instant};

use bruck_bench::harness::BenchGroup;
use bruck_comm::{Communicator, CountingComm, MsgBuf, ReduceOp, Tag, ThreadComm};
use bruck_core::{alltoallv, packed_displs, AlltoallvAlgorithm};
use bruck_datatype::IndexedBlocks;
use bruck_workload::{Distribution, SizeMatrix};

fn bench_p2p() {
    let mut group = BenchGroup::new("comm_p2p");
    group.sample_size(10);
    for size in [32usize, 4096] {
        group.bench_custom(&format!("sendrecv_ping/{size}"), |iters| {
            let times = ThreadComm::run(2, |comm| {
                let payload = vec![0u8; size];
                let peer = 1 - comm.rank();
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    comm.sendrecv(peer, 1, &payload, peer, 1).unwrap();
                }
                start.elapsed()
            });
            times.into_iter().max().unwrap()
        });
        group.bench_custom(&format!("sendrecv_buf_ping/{size}"), |iters| {
            let times = ThreadComm::run(2, |comm| {
                let region = MsgBuf::from_vec(vec![0u8; size]);
                let peer = 1 - comm.rank();
                comm.barrier().unwrap();
                let start = Instant::now();
                for _ in 0..iters {
                    comm.sendrecv_buf(peer, 1, region.slice(..), peer, 1).unwrap();
                }
                start.elapsed()
            });
            times.into_iter().max().unwrap()
        });
    }
    group.finish();
}

fn bench_collectives() {
    let mut group = BenchGroup::new("comm_collectives");
    group.sample_size(10);
    for p in [8usize, 64] {
        group.bench_custom(&format!("barrier/{p}"), |iters| {
            let times: Vec<Duration> = ThreadComm::run(p, |comm| {
                let start = Instant::now();
                for _ in 0..iters {
                    comm.barrier().unwrap();
                }
                start.elapsed()
            });
            times.into_iter().max().unwrap()
        });
        group.bench_custom(&format!("allreduce_max/{p}"), |iters| {
            let times: Vec<Duration> = ThreadComm::run(p, |comm| {
                let start = Instant::now();
                for i in 0..iters {
                    comm.allreduce_u64(i ^ comm.rank() as u64, ReduceOp::Max).unwrap();
                }
                start.elapsed()
            });
            times.into_iter().max().unwrap()
        });
    }
    group.finish();
}

/// The Figure 2 micro-cause: datatype-engine pack vs. explicit memcpy pack of
/// the same (P+1)/2 non-contiguous blocks.
fn bench_pack_paths() {
    let mut group = BenchGroup::new("pack_datatype_vs_memcpy");
    for (p, block) in [(256usize, 32usize), (256, 512)] {
        let buf: Vec<u8> = (0..p * block).map(|i| i as u8).collect();
        let blocks: Vec<(usize, usize)> =
            (0..p).filter(|i| i & 1 == 1).map(|i| (i * block, block)).collect();
        let layout = IndexedBlocks::new(blocks.clone()).unwrap();
        let mut wire = vec![0u8; layout.packed_len()];
        group.bench(&format!("datatype_pack/p{p}_b{block}"), || {
            layout.pack_into(&buf, &mut wire).unwrap();
        });
        group.bench(&format!("memcpy_pack/p{p}_b{block}"), || {
            let mut at = 0;
            for &(d, l) in &blocks {
                wire[at..at + l].copy_from_slice(&buf[d..d + l]);
                at += l;
            }
            std::hint::black_box(at);
        });
    }
    group.finish();
}

const COPY_BENCH_TAG: Tag = 0x0777;

/// Spread-out exchange through the compat `&[u8]` path: one payload copy per
/// message (the pre-`MsgBuf` transport behaviour, kept here as the baseline).
fn compat_spread_out<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) {
    let p = comm.size();
    let me = comm.rank();
    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);
    for step in 1..p {
        let dest = (me + step) % p;
        comm.isend(dest, COPY_BENCH_TAG, &sendbuf[sdispls[dest]..sdispls[dest] + sendcounts[dest]])
            .unwrap();
    }
    for step in 1..p {
        let src = (me + p - step) % p;
        comm.recv_into(src, COPY_BENCH_TAG, &mut recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]])
            .unwrap();
    }
}

/// Spread-out exchange over an already-packed `MsgBuf` region: the steady
/// state the zero-copy API enables (an application that builds its send
/// data in a shared region once pays zero copies per exchange). The compat
/// API cannot express this — every send repacks.
fn region_spread_out<C: Communicator + ?Sized>(
    comm: &C,
    packed: &MsgBuf,
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) {
    let p = comm.size();
    let me = comm.rank();
    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&packed[sdispls[me]..sdispls[me] + sendcounts[me]]);
    for step in 1..p {
        let dest = (me + step) % p;
        comm.isend_buf(
            dest,
            COPY_BENCH_TAG,
            packed.slice(sdispls[dest]..sdispls[dest] + sendcounts[dest]),
        )
        .unwrap();
    }
    for step in 1..p {
        let src = (me + p - step) % p;
        comm.recv_into(src, COPY_BENCH_TAG, &mut recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]])
            .unwrap();
    }
}

/// Large-message all-to-all: the `MsgBuf` path (pack once, send refcounted
/// views) against the compat path (copy every message), plus the prepacked
/// steady state (region built once, zero copies per exchange). Also prints
/// the copied-byte totals measured under `CountingComm`, which is the
/// point: same wire traffic, far fewer bytes copied, no slowdown.
fn bench_alltoallv_copy_paths() {
    let p = 16;
    let n = 32 * 1024; // large blocks: the regime where copies dominate
    let m = SizeMatrix::generate(Distribution::Uniform, 11, p, n);

    // Copied-byte audit (untimed, one run each).
    let audits: Vec<(usize, usize)> = ThreadComm::run(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf: Vec<u8> = (0..sendcounts.iter().sum()).map(|i| i as u8).collect();
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];

        let counting = CountingComm::new(comm);
        compat_spread_out(
            &counting, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
        );
        let compat_copied = counting.bytes_copied();
        counting.reset();
        alltoallv(
            AlltoallvAlgorithm::SpreadOut,
            &counting,
            &sendbuf,
            &sendcounts,
            &sdispls,
            &mut recvbuf,
            &recvcounts,
            &rdispls,
        )
        .unwrap();
        let msgbuf_copied = counting.bytes_copied();
        (compat_copied, msgbuf_copied)
    });
    let compat_total: usize = audits.iter().map(|a| a.0).sum();
    let msgbuf_total: usize = audits.iter().map(|a| a.1).sum();
    println!(
        "\n== alltoallv_large (P={p}, N={n}) ==\n\
         bytes copied on the send side: compat path {compat_total}, MsgBuf path {msgbuf_total}"
    );
    assert!(
        msgbuf_total < compat_total,
        "MsgBuf path must copy fewer bytes ({msgbuf_total} vs {compat_total})"
    );

    let mut group = BenchGroup::new("alltoallv_large");
    group.sample_size(10);
    group.bench_custom("compat_copy_per_message", |iters| {
        let times = ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let sendcounts = m.sendcounts(me);
            let sdispls = packed_displs(&sendcounts);
            let sendbuf: Vec<u8> = (0..sendcounts.iter().sum()).map(|i| i as u8).collect();
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            comm.barrier().unwrap();
            let start = Instant::now();
            for _ in 0..iters {
                compat_spread_out(
                    comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
                );
            }
            start.elapsed()
        });
        times.into_iter().max().unwrap()
    });
    group.bench_custom("msgbuf_zero_copy", |iters| {
        let times = ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let sendcounts = m.sendcounts(me);
            let sdispls = packed_displs(&sendcounts);
            let sendbuf: Vec<u8> = (0..sendcounts.iter().sum()).map(|i| i as u8).collect();
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            comm.barrier().unwrap();
            let start = Instant::now();
            for _ in 0..iters {
                alltoallv(
                    AlltoallvAlgorithm::SpreadOut,
                    comm,
                    &sendbuf,
                    &sendcounts,
                    &sdispls,
                    &mut recvbuf,
                    &recvcounts,
                    &rdispls,
                )
                .unwrap();
            }
            start.elapsed()
        });
        times.into_iter().max().unwrap()
    });
    group.bench_custom("msgbuf_prepacked_region", |iters| {
        let times = ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let sendcounts = m.sendcounts(me);
            let sdispls = packed_displs(&sendcounts);
            let packed =
                MsgBuf::from_vec((0..sendcounts.iter().sum()).map(|i| i as u8).collect());
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            comm.barrier().unwrap();
            let start = Instant::now();
            for _ in 0..iters {
                region_spread_out(
                    comm, &packed, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
                );
            }
            start.elapsed()
        });
        times.into_iter().max().unwrap()
    });
    group.finish();
}

fn main() {
    bench_p2p();
    bench_collectives();
    bench_pack_paths();
    bench_alltoallv_copy_paths();
}
