//! Protocol analysis over extracted schedules.
//!
//! Each pass consumes an [`Extraction`] (or plain layout arrays) and emits
//! [`Finding`]s. The passes are intentionally independent — a schedule with a
//! deadlock cycle still gets its tag-collision and conservation passes run,
//! so one bug does not mask another.
//!
//! What each pass guarantees (and does not) is documented in DESIGN.md §8;
//! the short version: all properties are **per-schedule** — they hold for the
//! schedule the model executed (which, by determinism of the rank bodies, is
//! the communication DAG of *every* run), not for hypothetical programs whose
//! control flow depends on message timing.

use std::collections::BTreeMap;
use std::fmt;

use bruck_comm::{Tag, RESERVED_TAG_BASE};

use crate::model::{Extraction, RankOutcome};

/// One verifier diagnostic. Ordering of fields mirrors what a human debugging
/// the algorithm needs first: which ranks, which step (tag), what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// A cycle in the wait-for graph: each listed rank is blocked on a
    /// receive from the next (wrapping), so no execution order can finish.
    DeadlockCycle {
        /// The ranks on the cycle, in wait-for order.
        ranks: Vec<usize>,
        /// `tags[i]` is the tag rank `ranks[i]` is waiting to receive from
        /// `ranks[(i + 1) % len]`.
        tags: Vec<Tag>,
    },
    /// A rank parked on a receive that no surviving rank will ever send
    /// (blocked, but not on a cycle — e.g. the peer already completed).
    OrphanedRecv {
        /// The blocked rank.
        rank: usize,
        /// The rank it is waiting on.
        src: usize,
        /// The tag it is waiting for.
        tag: Tag,
    },
    /// A message that was sent but never received.
    UnmatchedSend {
        /// Sender.
        src: usize,
        /// Destination.
        dst: usize,
        /// Tag.
        tag: Tag,
        /// Payload length in bytes.
        len: usize,
    },
    /// Two same-`(src, dst, tag)` messages were (potentially) in flight at
    /// once with different payloads: their matching is decided solely by the
    /// runtime's non-overtaking guarantee, not by the protocol's tag
    /// discipline — the paper's §4 correctness argument does not cover this.
    TagCollision {
        /// Sender of both messages.
        src: usize,
        /// Destination of both messages.
        dst: usize,
        /// The shared tag.
        tag: Tag,
        /// Schedule message index of the earlier send.
        first_msg: usize,
        /// Schedule message index of the later send.
        second_msg: usize,
    },
    /// Bytes sent under a tag do not equal bytes received under it.
    ConservationViolation {
        /// The tag (communication step) whose ledger is off.
        tag: Tag,
        /// Total bytes sent under the tag.
        sent: usize,
        /// Total bytes received under the tag.
        received: usize,
    },
    /// A rank's body returned a real error.
    RankError {
        /// The failing rank.
        rank: usize,
        /// The error, rendered.
        error: String,
    },
    /// An algorithm produced wrong bytes in a rank's receive buffer.
    WrongOutput {
        /// The rank whose output is wrong.
        rank: usize,
        /// Human-readable description of the first mismatch.
        detail: String,
    },
    /// A counts/displacements layout is malformed: a block escapes the
    /// buffer, or two blocks overlap.
    LayoutViolation {
        /// Which layout (e.g. `"plan rdispls"`).
        context: String,
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::DeadlockCycle { ranks, tags } => {
                write!(f, "deadlock cycle:")?;
                for (i, r) in ranks.iter().enumerate() {
                    let next = ranks[(i + 1) % ranks.len()];
                    write!(f, " rank {r} waits on rank {next} tag {};", tags[i])?;
                }
                Ok(())
            }
            Finding::OrphanedRecv { rank, src, tag } => {
                write!(f, "rank {rank} blocked forever on recv from rank {src} tag {tag} (no cycle; sender will never send)")
            }
            Finding::UnmatchedSend { src, dst, tag, len } => {
                write!(f, "unmatched send: rank {src} -> rank {dst} tag {tag} ({len} bytes never received)")
            }
            Finding::TagCollision { src, dst, tag, first_msg, second_msg } => {
                write!(f, "tag collision: messages #{first_msg} and #{second_msg} from rank {src} to rank {dst} share tag {tag} while both in flight with different payloads")
            }
            Finding::ConservationViolation { tag, sent, received } => {
                write!(f, "byte conservation violated for tag {tag}: {sent} sent != {received} received")
            }
            Finding::RankError { rank, error } => write!(f, "rank {rank} failed: {error}"),
            Finding::WrongOutput { rank, detail } => write!(f, "wrong output on rank {rank}: {detail}"),
            Finding::LayoutViolation { context, detail } => {
                write!(f, "layout violation in {context}: {detail}")
            }
        }
    }
}

/// Run every schedule-level pass and collect the findings.
pub fn analyze(extraction: &Extraction) -> Vec<Finding> {
    let mut findings = Vec::new();
    rank_errors(extraction, &mut findings);
    deadlocks(extraction, &mut findings);
    unmatched_sends(extraction, &mut findings);
    tag_collisions(extraction, &mut findings);
    conservation(extraction, &mut findings);
    findings
}

fn rank_errors(ext: &Extraction, out: &mut Vec<Finding>) {
    for (rank, outcome) in ext.ranks.iter().enumerate() {
        if let RankOutcome::Failed(e) = outcome {
            out.push(Finding::RankError { rank, error: e.to_string() });
        }
    }
}

/// Wait-for-graph analysis. Every blocked rank waits on exactly one peer, so
/// the graph is functional and each blocked rank either reaches a cycle or a
/// settled (completed/failed) rank; the former is a [`Finding::DeadlockCycle`]
/// (reported once per distinct cycle), everything else an
/// [`Finding::OrphanedRecv`].
fn deadlocks(ext: &Extraction, out: &mut Vec<Finding>) {
    let p = ext.schedule.p;
    let blocked: Vec<Option<(usize, Tag)>> = (0..p)
        .map(|r| match ext.ranks[r] {
            RankOutcome::Blocked(b) => Some((b.src, b.tag)),
            _ => None,
        })
        .collect();
    let mut on_reported_cycle = vec![false; p];
    for start in 0..p {
        let Some((start_src, start_tag)) = blocked[start] else { continue };
        // Walk the functional wait-for graph with a visited set local to this
        // start; a revisit inside the walk is a cycle.
        let mut at = start;
        let mut path: Vec<usize> = Vec::new();
        let mut seen = vec![false; p];
        let cycle_entry = loop {
            if seen[at] {
                break Some(at);
            }
            seen[at] = true;
            path.push(at);
            match blocked[at] {
                Some((next_src, _)) => at = next_src,
                None => break None, // chain ends at a settled rank: orphaned
            }
        };
        match cycle_entry {
            Some(entry) => {
                let Some(cycle_start) = path.iter().position(|&r| r == entry) else {
                    unreachable!("cycle entry was pushed to the path before being revisited")
                };
                let cycle = &path[cycle_start..];
                if cycle.iter().any(|&r| on_reported_cycle[r]) {
                    continue; // this cycle was already reported via another start
                }
                for &r in cycle {
                    on_reported_cycle[r] = true;
                }
                let tags = cycle
                    .iter()
                    .map(|&r| match blocked[r] {
                        Some((_, tag)) => tag,
                        None => unreachable!("every rank on the cycle is blocked"),
                    })
                    .collect();
                out.push(Finding::DeadlockCycle { ranks: cycle.to_vec(), tags });
            }
            None => {
                out.push(Finding::OrphanedRecv { rank: start, src: start_src, tag: start_tag });
            }
        }
    }
    // Ranks blocked on a chain *into* a cycle (not on it) are starved too;
    // report them as orphaned unless already on a reported cycle.
    for rank in 0..p {
        if let Some((src, tag)) = blocked[rank] {
            if !on_reported_cycle[rank]
                && !out.iter().any(|f| matches!(f, Finding::OrphanedRecv { rank: r, .. } if *r == rank))
            {
                out.push(Finding::OrphanedRecv { rank, src, tag });
            }
        }
    }
}

fn unmatched_sends(ext: &Extraction, out: &mut Vec<Finding>) {
    for &i in &ext.schedule.unmatched_messages() {
        let m = &ext.schedule.messages[i];
        out.push(Finding::UnmatchedSend { src: m.src, dst: m.dst, tag: m.tag, len: m.payload.len() });
    }
}

/// Tag-collision pass over user-tag messages (`tag < RESERVED_TAG_BASE`).
///
/// The built-in collectives deliberately reuse their reserved tags across
/// invocations and rely on non-overtaking by design (documented in
/// `bruck-comm`), so reserved tags are exempt. Equal-payload duplicates are
/// also exempt: reordering them cannot change any receiver-visible state.
fn tag_collisions(ext: &Extraction, out: &mut Vec<Finding>) {
    let mut by_key: BTreeMap<(usize, usize, Tag), Vec<usize>> = BTreeMap::new();
    for (i, m) in ext.schedule.messages.iter().enumerate() {
        if m.tag < RESERVED_TAG_BASE {
            by_key.entry((m.src, m.dst, m.tag)).or_default().push(i);
        }
    }
    for ((src, dst, tag), msgs) in by_key {
        // Messages are in global commit order, which is program order per
        // sender, so adjacent-pair checks cover the group: if every message's
        // receive happens-before the next one's send, the whole chain is
        // protocol-ordered.
        for pair in msgs.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let same_payload =
                ext.schedule.messages[a].payload.as_slice() == ext.schedule.messages[b].payload.as_slice();
            if !same_payload && ext.schedule.concurrent_in_flight(a, b) {
                out.push(Finding::TagCollision { src, dst, tag, first_msg: a, second_msg: b });
            }
        }
    }
}

/// Per-tag byte ledger: Σ sent == Σ received for every communication step.
fn conservation(ext: &Extraction, out: &mut Vec<Finding>) {
    let mut ledger: BTreeMap<Tag, (usize, usize)> = BTreeMap::new();
    for m in &ext.schedule.messages {
        let entry = ledger.entry(m.tag).or_insert((0, 0));
        entry.0 += m.payload.len();
        if m.recv_event.is_some() {
            entry.1 += m.payload.len();
        }
    }
    for (tag, (sent, received)) in ledger {
        if sent != received {
            out.push(Finding::ConservationViolation { tag, sent, received });
        }
    }
}

/// Validate a counts/displacements layout against a buffer: every block in
/// bounds, no two non-empty blocks overlapping.
///
/// Used both by the matrix runner (on the workload's packed layouts) and by
/// the `ExchangePlan` invariant tests.
pub fn check_layout(context: &str, counts: &[usize], displs: &[usize], buf_len: usize) -> Vec<Finding> {
    let mut findings = Vec::new();
    if counts.len() != displs.len() {
        findings.push(Finding::LayoutViolation {
            context: context.to_string(),
            detail: format!("counts.len() {} != displs.len() {}", counts.len(), displs.len()),
        });
        return findings;
    }
    let mut spans: Vec<(usize, usize, usize)> = Vec::new(); // (start, end, block)
    for (i, (&c, &d)) in counts.iter().zip(displs).enumerate() {
        match d.checked_add(c) {
            Some(end) if end <= buf_len => {
                if c > 0 {
                    spans.push((d, end, i));
                }
            }
            Some(end) => findings.push(Finding::LayoutViolation {
                context: context.to_string(),
                detail: format!("block {i} [{d}, {end}) exceeds buffer of {buf_len} bytes"),
            }),
            None => findings.push(Finding::LayoutViolation {
                context: context.to_string(),
                detail: format!("block {i} displacement {d} + count {c} overflows usize"),
            }),
        }
    }
    spans.sort_unstable();
    for pair in spans.windows(2) {
        let (s0, e0, b0) = pair[0];
        let (s1, _, b1) = pair[1];
        if s1 < e0 {
            findings.push(Finding::LayoutViolation {
                context: context.to_string(),
                detail: format!("blocks {b0} and {b1} overlap: [{s0}, {e0}) and [{s1}, ..)"),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::extract;
    use bruck_comm::Communicator;

    #[test]
    fn clean_pingpong_has_no_findings() {
        let ext = extract(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1])?;
                comm.recv(1, 2).map(|_| ())
            } else {
                let _ = comm.recv(0, 1)?;
                comm.send(0, 2, &[2])
            }
        });
        assert!(analyze(&ext).is_empty());
    }

    #[test]
    fn cycle_is_reported_once_with_tags() {
        let p = 4;
        let ext = extract(p, move |comm| {
            let me = comm.rank();
            let _ = comm.recv((me + p - 1) % p, 7)?;
            comm.send((me + 1) % p, 7, &[0])
        });
        let findings = analyze(&ext);
        let cycles: Vec<_> =
            findings.iter().filter(|f| matches!(f, Finding::DeadlockCycle { .. })).collect();
        assert_eq!(cycles.len(), 1, "{findings:?}");
        let Finding::DeadlockCycle { ranks, tags } = cycles[0] else { unreachable!() };
        assert_eq!(ranks.len(), 4);
        assert!(tags.iter().all(|&t| t == 7));
    }

    #[test]
    fn orphaned_recv_reported_when_peer_completed() {
        let ext = extract(2, |comm| {
            if comm.rank() == 0 {
                Ok(()) // sends nothing, completes
            } else {
                comm.recv(0, 3).map(|_| ())
            }
        });
        let findings = analyze(&ext);
        assert!(
            findings.iter().any(|f| matches!(
                f,
                Finding::OrphanedRecv { rank: 1, src: 0, tag: 3 }
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn unmatched_send_breaks_conservation_too() {
        let ext = extract(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &[0; 8])
            } else {
                Ok(())
            }
        });
        let findings = analyze(&ext);
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::UnmatchedSend { src: 0, dst: 1, tag: 5, len: 8 })));
        assert!(findings.iter().any(|f| matches!(
            f,
            Finding::ConservationViolation { tag: 5, sent: 8, received: 0 }
        )));
    }

    #[test]
    fn layout_overlap_and_oob_detected() {
        let f = check_layout("t", &[4, 4], &[0, 2], 8);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(matches!(&f[0], Finding::LayoutViolation { detail, .. } if detail.contains("overlap")));
        let f = check_layout("t", &[4], &[6], 8);
        assert!(matches!(&f[0], Finding::LayoutViolation { detail, .. } if detail.contains("exceeds")));
        assert!(check_layout("t", &[2, 0, 2], &[0, 1, 2], 4).is_empty());
    }
}
