//! [`EventComm`]: the event-driven backend — thousands of lightweight rank
//! tasks multiplexed onto a small, fixed pool of worker OS threads.
//!
//! ## Why
//!
//! The paper's regime is P = 32,768 ranks. [`crate::ThreadComm`]'s
//! one-OS-thread-per-rank design tops out around P ≈ 512 (thread stacks and
//! scheduler pressure), and [`crate::SimComm`] still spawns one thread per
//! rank even though only one runs at a time. `EventComm` runs the *same
//! unmodified algorithms* with a bounded thread count: every blocking
//! [`crate::Communicator`] operation is a yield point instead of a condvar
//! park, so one worker thread can drive thousands of ranks.
//!
//! ## How a task blocks without owning a thread
//!
//! This workspace is `unsafe`-free and dependency-free, so a blocked task
//! cannot capture its OS stack (no fibers, no hand-rolled coroutines). A
//! rank task instead uses **run-to-block + replay**, the same
//! commit-and-replay idea `bruck-check`'s `ModelComm` uses for symbolic
//! schedule extraction (and what [`CommError::WouldBlock`] documents as the
//! suspension-by-unwinding idiom):
//!
//! 1. The rank closure executes normally, appending every *completed*
//!    communicator operation to a compact per-task [`ReplayLog`].
//! 2. When a receive finds no matching message, the task registers a
//!    *waiter* in the destination store's readiness list and unwinds off the
//!    worker via a sentinel panic ([`TaskYield`]) — the worker thread is
//!    immediately free to run another task.
//! 3. A sender that deposits a matching message takes the waiter and marks
//!    the task runnable. When a worker re-executes it, the closure runs from
//!    the top, but the logged prefix is *replayed*: sends are suppressed,
//!    receives return the logged payload bytes, clock reads return logged
//!    values. Replay performs no communication and reaches the parked
//!    operation in O(completed ops) straight-line time, then execution goes
//!    live again.
//!
//! The contract this imposes: the rank closure must be **deterministic**
//! (replay must retrace it) and must not perform external side effects that
//! are unsafe to repeat. Every algorithm and wrapper in this workspace
//! qualifies — wrappers ([`crate::FaultComm`], [`crate::ReliableComm`],
//! [`crate::MeteredComm`], …) are constructed inside the closure, so each
//! re-execution rebuilds their state identically from the replayed prefix.
//! Payload identity is *not* preserved across replay: a replayed
//! `recv_buf` returns a fresh copy of the logged bytes, not the sender's
//! original region (byte equality is preserved; pointer aliasing is not).
//!
//! ## Virtual time
//!
//! Like the simulator, the runtime's clock is virtual: [`Communicator::now`]
//! reads it, [`Communicator::sleep`] and timed receives park the *task* with
//! a deadline. The clock advances only at global quiescence (every worker
//! idle, no task runnable), jumping to the earliest pending deadline — so
//! timeouts fire after exactly their budget of virtual time and zero
//! wall-clock time, and a world where every live task is parked with no
//! deadline is a *proved deadlock* ([`CommError::Deadlock`]), never a hang.
//!
//! The scheduler itself (worker pool, task states, wake lists, clock
//! advance) lives in [`crate::runtime`].

use std::panic::panic_any;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use crate::mailbox::MatchStore;
use crate::runtime::EventWorld;
use crate::{CommError, CommResult, Communicator, MsgBuf, Tag};

/// Sentinel panic payload a task unwinds with when its current operation
/// cannot complete yet. Filtered by the runtime's panic hook (so yields are
/// silent) and caught by the worker, which parks the task instead of
/// treating it as a failure.
pub(crate) struct TaskYield;

/// Why a parked task was made runnable again. Delivered to the first live
/// (non-replayed) blocking operation of the next execution — which, by
/// determinism, is exactly the operation that parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    /// A matching message was deposited for the parked receive.
    Message,
    /// The parked receive's deadline elapsed (virtual time).
    TimedOut,
    /// The parked sleep's wake-up instant was reached (virtual time).
    SleepElapsed,
    /// The runtime proved a global deadlock while this task was parked in a
    /// deadline-less receive.
    Deadlocked,
}

/// A parked receive registered in a rank's inbox: the readiness list entry a
/// depositing sender checks. At most one per rank (a task parks on exactly
/// one operation), tagged with the parking execution's epoch so stale wakes
/// are provably ignorable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub(crate) src: usize,
    pub(crate) tag: Tag,
    pub(crate) epoch: u64,
}

/// One rank's inbox: the matching store plus its readiness registration.
pub(crate) struct Inbox {
    pub(crate) store: MatchStore,
    pub(crate) waiter: Option<Waiter>,
}

/// What an unwinding task asks the scheduler to do with it.
pub(crate) enum Park {
    /// Parked in a receive; `deadline` is set for timed receives.
    Recv {
        /// Virtual-time deadline for `recv_buf_timeout`.
        deadline: Option<Duration>,
    },
    /// Parked in a sleep until the given virtual instant.
    Sleep {
        /// Virtual instant at which the sleep elapses.
        until: Duration,
    },
}

// Replay-log operation kinds: one byte per completed operation. Keeping the
// kind stream separate from the per-kind side arrays keeps the log compact
// enough for O(P)-operation ranks at P = 32k (a send costs 1 byte, a recv
// 5 bytes + payload).
const K_SEND: u8 = 0;
const K_RECV: u8 = 1;
const K_ERR: u8 = 2;
const K_PROBE: u8 = 3;
const K_NOW: u8 = 4;
const K_SLEEP: u8 = 5;

fn kind_name(k: u8) -> &'static str {
    match k {
        K_SEND => "send",
        K_RECV => "recv",
        K_ERR => "error",
        K_PROBE => "probe",
        K_NOW => "now",
        K_SLEEP => "sleep",
        _ => "unknown",
    }
}

/// The compact log of one task's completed communicator operations,
/// replayed on every re-execution. Column-oriented: `kinds` is the 1-byte
/// op stream; each kind consumes the next entry of its side array.
#[derive(Default)]
pub(crate) struct ReplayLog {
    kinds: Vec<u8>,
    /// Payload length per `K_RECV`, in order; payload bytes are appended
    /// contiguously to `arena`, so offsets are running sums.
    recv_lens: Vec<u32>,
    /// Received payload bytes, contiguous in receive order.
    arena: Vec<u8>,
    /// Error value per `K_ERR` (timeouts, truncations, deadlock verdicts).
    errs: Vec<CommError>,
    /// Result per `K_PROBE`.
    probes: Vec<Option<u32>>,
    /// Virtual-clock reading (nanoseconds) per `K_NOW`.
    nows: Vec<u64>,
}

/// Replay progress through a [`ReplayLog`]: one cursor per column.
#[derive(Default, Clone, Copy)]
struct Cursor {
    op: usize,
    recv: usize,
    arena: usize,
    err: usize,
    probe: usize,
    now: usize,
}

/// Per-execution state of one task, owned by the [`EventComm`] handle the
/// worker passes to the rank closure.
pub(crate) struct ExecCtx {
    log: ReplayLog,
    cur: Cursor,
    /// Sends buffered for batched delivery: flushed at every receive/probe
    /// entry (so self-sends and probe loops observe them), at a size
    /// threshold, and when the execution parks, completes, or panics.
    outbox: Vec<(usize, Tag, MsgBuf)>,
    /// The wake verdict this execution was started with, if it was parked.
    wake: Option<Wake>,
    /// Set just before unwinding with [`TaskYield`].
    park: Option<Park>,
    /// This execution's epoch (== the task slot's epoch while it runs).
    epoch: u64,
}

/// Buffered sends per flush. Batching amortizes inbox locking and wake
/// notifications; the flush-on-receive rule keeps it semantically invisible.
const OUTBOX_BATCH: usize = 64;

impl ExecCtx {
    pub(crate) fn new(log: ReplayLog, wake: Option<Wake>, epoch: u64) -> ExecCtx {
        ExecCtx { log, cur: Cursor::default(), outbox: Vec::new(), wake, park: None, epoch }
    }

    /// Still retracing the previous executions' completed prefix?
    pub(crate) fn replaying(&self) -> bool {
        self.cur.op < self.log.kinds.len()
    }

    pub(crate) fn take_park(&mut self) -> Option<Park> {
        self.park.take()
    }

    pub(crate) fn into_log(self) -> ReplayLog {
        self.log
    }

    fn diverged(&self, rank: usize, live: &str) -> ! {
        panic!(
            "EventComm rank {rank}: nondeterministic rank closure: replay log has a \
             {} at op {} but the live code issued a {live}; EventComm requires the \
             closure to retrace identically on re-execution",
            kind_name(self.log.kinds[self.cur.op]),
            self.cur.op,
        )
    }

    // -- live-mode append helpers (cursor stays pinned at the end) --

    fn append_send(&mut self) {
        self.log.kinds.push(K_SEND);
        self.cur.op += 1;
    }

    fn append_recv(&mut self, payload: &[u8]) {
        self.log.kinds.push(K_RECV);
        self.log.recv_lens.push(payload.len() as u32);
        self.log.arena.extend_from_slice(payload);
        self.cur.op += 1;
        self.cur.recv += 1;
        self.cur.arena += payload.len();
    }

    fn append_err(&mut self, e: CommError) {
        self.log.kinds.push(K_ERR);
        self.log.errs.push(e);
        self.cur.op += 1;
        self.cur.err += 1;
    }

    fn append_probe(&mut self, len: Option<usize>) {
        self.log.kinds.push(K_PROBE);
        self.log.probes.push(len.map(|l| l as u32));
        self.cur.op += 1;
        self.cur.probe += 1;
    }

    fn append_now(&mut self, t: Duration) {
        self.log.kinds.push(K_NOW);
        self.log.nows.push(t.as_nanos() as u64);
        self.cur.op += 1;
        self.cur.now += 1;
    }

    fn append_sleep(&mut self) {
        self.log.kinds.push(K_SLEEP);
        self.cur.op += 1;
    }

    // -- replay-mode consume helpers --

    fn replay_send(&mut self, rank: usize) -> CommResult<()> {
        match self.log.kinds[self.cur.op] {
            K_SEND => {
                self.cur.op += 1;
                Ok(())
            }
            _ => self.diverged(rank, "send"),
        }
    }

    fn replay_recv(&mut self, rank: usize) -> CommResult<MsgBuf> {
        match self.log.kinds[self.cur.op] {
            K_RECV => {
                self.cur.op += 1;
                let len = self.log.recv_lens[self.cur.recv] as usize;
                self.cur.recv += 1;
                let start = self.cur.arena;
                self.cur.arena += len;
                Ok(MsgBuf::copy_from_slice(&self.log.arena[start..start + len]))
            }
            K_ERR => {
                self.cur.op += 1;
                let e = self.log.errs[self.cur.err].clone();
                self.cur.err += 1;
                Err(e)
            }
            _ => self.diverged(rank, "recv"),
        }
    }

    fn replay_probe(&mut self, rank: usize) -> CommResult<Option<usize>> {
        match self.log.kinds[self.cur.op] {
            K_PROBE => {
                self.cur.op += 1;
                let len = self.log.probes[self.cur.probe].map(|l| l as usize);
                self.cur.probe += 1;
                Ok(len)
            }
            _ => self.diverged(rank, "probe"),
        }
    }

    fn replay_now(&mut self, rank: usize) -> Duration {
        match self.log.kinds[self.cur.op] {
            K_NOW => {
                self.cur.op += 1;
                let t = Duration::from_nanos(self.log.nows[self.cur.now]);
                self.cur.now += 1;
                t
            }
            _ => self.diverged(rank, "now"),
        }
    }

    fn replay_sleep(&mut self, rank: usize) {
        match self.log.kinds[self.cur.op] {
            K_SLEEP => self.cur.op += 1,
            _ => self.diverged(rank, "sleep"),
        }
    }
}

/// A rank's handle onto an event-driven world. Implements [`Communicator`],
/// so every algorithm and wrapper stack runs on the bounded worker pool
/// unmodified. Constructed per execution by the runtime's workers; user code
/// only ever sees `&EventComm` inside the closure passed to
/// [`EventComm::run`].
pub struct EventComm<'w> {
    world: &'w EventWorld,
    rank: usize,
    ctx: Mutex<ExecCtx>,
}

impl<'w> EventComm<'w> {
    pub(crate) fn attach(world: &'w EventWorld, rank: usize, ctx: ExecCtx) -> EventComm<'w> {
        EventComm { world, rank, ctx: Mutex::new(ctx) }
    }

    pub(crate) fn detach(self) -> ExecCtx {
        self.ctx.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// The trait requires `&self`, so the per-task context sits behind a
    /// mutex; it is only ever locked by the worker currently executing this
    /// task, so the lock is uncontended (and poison-recovered: an algorithm
    /// panic must not wedge the diagnostics path).
    fn ctx(&self) -> MutexGuard<'_, ExecCtx> {
        self.ctx.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Deliver every buffered send: deposit into the destination inboxes
    /// (taking matching waiters) and hand the woken ranks to the scheduler
    /// in one batch.
    pub(crate) fn flush_outbox(world: &EventWorld, rank: usize, ctx: &mut ExecCtx) {
        if ctx.outbox.is_empty() {
            return;
        }
        let mut woken = Vec::new();
        for (dest, tag, buf) in ctx.outbox.drain(..) {
            let mut inbox = world.inbox(dest);
            inbox.store.push(rank, tag, buf);
            #[cfg(feature = "hb-audit")]
            world.audit_record(rank, crate::runtime::AuditKind::Deposit { src: rank, dest, tag });
            let matches = inbox
                .waiter
                .as_ref()
                .is_some_and(|w| w.src == rank && w.tag == tag);
            if matches {
                if let Some(w) = inbox.waiter.take() {
                    #[cfg(feature = "hb-audit")]
                    world.audit_record(
                        rank,
                        crate::runtime::AuditKind::WaiterTaken {
                            rank: dest,
                            epoch: w.epoch,
                            by: crate::runtime::WakeSource::Sender(rank),
                        },
                    );
                    let _ = w;
                    woken.push(dest);
                }
            }
        }
        if !woken.is_empty() {
            world.wake_on_message(rank, &woken);
        }
    }

    fn flush(&self, ctx: &mut ExecCtx) {
        Self::flush_outbox(self.world, self.rank, ctx);
    }

    /// Core receive: replay, complete immediately, or park the task.
    /// `cap` makes it a bounded receive failing with [`CommError::Truncated`]
    /// *without consuming* the message, exactly like the other backends.
    fn op_recv(
        &self,
        src: usize,
        tag: Tag,
        timeout: Option<Duration>,
        cap: Option<usize>,
    ) -> CommResult<MsgBuf> {
        self.check_rank(src)?;
        let mut ctx = self.ctx();
        if ctx.replaying() {
            return ctx.replay_recv(self.rank);
        }
        self.flush(&mut ctx);
        // By determinism the first live blocking op is the op that parked,
        // so this execution's wake verdict (if any) belongs to us.
        let wake = ctx.wake.take();
        let mut inbox = self.world.inbox(self.rank);
        match inbox.store.peek_len(src, tag) {
            Some(len) if cap.is_some_and(|c| len > c) => {
                drop(inbox);
                let e = CommError::Truncated { message_len: len, buffer_len: cap.unwrap_or(0) };
                ctx.append_err(e.clone());
                Err(e)
            }
            Some(_) => {
                // A message beats a simultaneous wake verdict, matching the
                // simulator: if one raced in, deliver it and drop the verdict.
                let msg = match inbox.store.try_pop(src, tag) {
                    Some(m) => m,
                    None => panic!("rank {}: peek/pop mismatch", self.rank),
                };
                drop(inbox);
                ctx.append_recv(&msg);
                Ok(msg)
            }
            None => match wake {
                Some(Wake::TimedOut) => {
                    drop(inbox);
                    // Virtual time advanced exactly to the deadline, so the
                    // wait equals the budget (same exactness the sim tests).
                    let e =
                        CommError::Timeout { src, tag, waited: timeout.unwrap_or_default() };
                    ctx.append_err(e.clone());
                    Err(e)
                }
                Some(Wake::Deadlocked) => {
                    drop(inbox);
                    let e = CommError::Deadlock { src, tag };
                    ctx.append_err(e.clone());
                    Err(e)
                }
                // None (first arrival at this op) or a message wake whose
                // message we cannot see yet never happens for Message (only
                // this rank pops its inbox), but parking again is always
                // safe and correct.
                _ => {
                    if inbox.waiter.is_some() {
                        panic!("rank {}: second waiter registered", self.rank);
                    }
                    inbox.waiter = Some(Waiter { src, tag, epoch: ctx.epoch });
                    drop(inbox);
                    #[cfg(feature = "hb-audit")]
                    self.world.audit_record(
                        self.rank,
                        crate::runtime::AuditKind::WaiterArmed {
                            rank: self.rank,
                            src,
                            tag,
                            epoch: ctx.epoch,
                        },
                    );
                    let deadline = timeout.map(|t| self.world.clock_now() + t);
                    ctx.park = Some(Park::Recv { deadline });
                    drop(ctx);
                    panic_any(TaskYield)
                }
            },
        }
    }
}

impl Communicator for EventComm<'_> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.size()
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.check_rank(dest)?;
        let mut ctx = self.ctx();
        if ctx.replaying() {
            // Replayed sends are suppressed: the original execution already
            // delivered this message.
            return ctx.replay_send(self.rank);
        }
        ctx.append_send();
        ctx.outbox.push((dest, tag, buf));
        if ctx.outbox.len() >= OUTBOX_BATCH {
            self.flush(&mut ctx);
        }
        Ok(())
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.op_recv(src, tag, None, None)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        let msg = self.op_recv(src, tag, None, Some(buf.len()))?;
        buf[..msg.len()].copy_from_slice(&msg);
        Ok(msg.len())
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.check_rank(src)?;
        let mut ctx = self.ctx();
        if ctx.replaying() {
            return ctx.replay_probe(self.rank);
        }
        self.flush(&mut ctx);
        let len = self.world.inbox(self.rank).store.peek_len(src, tag);
        ctx.append_probe(len);
        Ok(len)
    }

    fn recv_buf_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> CommResult<MsgBuf> {
        // Override of the polling default: parks the task with a virtual
        // deadline instead of probe/sleep spinning.
        self.op_recv(src, tag, Some(timeout), None)
    }

    fn now(&self) -> Duration {
        let mut ctx = self.ctx();
        if ctx.replaying() {
            return ctx.replay_now(self.rank);
        }
        let t = self.world.clock_now();
        ctx.append_now(t);
        t
    }

    fn sleep(&self, d: Duration) {
        let mut ctx = self.ctx();
        if ctx.replaying() {
            ctx.replay_sleep(self.rank);
            return;
        }
        let wake = ctx.wake.take();
        if matches!(wake, Some(Wake::SleepElapsed)) || d.is_zero() {
            ctx.append_sleep();
            return;
        }
        // Park the *task* with a virtual deadline — the worker thread never
        // sleeps on behalf of a rank.
        self.flush(&mut ctx);
        let until = self.world.clock_now() + d;
        ctx.park = Some(Park::Sleep { until });
        drop(ctx);
        panic_any(TaskYield)
    }
}
