//! The adaptive `alltoallv` the paper's conclusion proposes: "Implementations
//! of MPI can use insights from this paper to directly optimize their
//! MPI_Alltoallv" — select spread-out, padded Bruck, or two-phase Bruck at
//! runtime from the §3.3 model and the observed workload.

use bruck_comm::{CommResult, Communicator, ReduceOp};

use super::{alltoallv, AlltoallvAlgorithm};
use crate::model::{select_algorithm, CostParams};

/// Non-uniform all-to-all that measures the workload's global maximum block
/// size with one allreduce, consults the §3.3 cost model, and dispatches to
/// the predicted-fastest algorithm. Returns the algorithm used.
///
/// All ranks deterministically agree on the choice (the allreduce gives every
/// rank the same `N`), so the collective stays well-formed.
#[allow(clippy::too_many_arguments)]
pub fn adaptive_alltoallv<C: Communicator + ?Sized>(
    comm: &C,
    params: &CostParams,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<AlltoallvAlgorithm> {
    let local_max = sendcounts.iter().copied().max().unwrap_or(0);
    let n_max = comm.allreduce_u64(local_max as u64, ReduceOp::Max)? as usize;
    let algo = match select_algorithm(comm.size(), n_max, params) {
        // The model's "spread-out" slot maps to the production (throttled)
        // pairwise implementation.
        AlltoallvAlgorithm::SpreadOut => AlltoallvAlgorithm::Vendor,
        other => other,
    };
    alltoallv(algo, comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    Ok(algo)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{build_send, check_recv};
    use super::*;
    use crate::packed_displs;
    use bruck_comm::ThreadComm;
    use bruck_workload::{Distribution, SizeMatrix};

    fn run(m: &SizeMatrix, params: &CostParams) -> AlltoallvAlgorithm {
        let p = m.p();
        let chosen = ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            let algo = adaptive_alltoallv(
                comm, params, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                &rdispls,
            )
            .unwrap();
            check_recv(me, m, &recvbuf, &rdispls);
            algo
        });
        // Every rank must have picked the same algorithm.
        assert!(chosen.windows(2).all(|w| w[0] == w[1]));
        chosen[0]
    }

    #[test]
    fn picks_by_regime_and_stays_correct() {
        let params = CostParams::default();
        // Tiny blocks → padded Bruck territory (N < 8 always wins per (3)).
        let tiny = SizeMatrix::uniform(64, 4);
        assert_eq!(run(&tiny, &params), AlltoallvAlgorithm::PaddedBruck);
        // Moderate blocks at a P where log P ≪ P → two-phase.
        let moderate = SizeMatrix::uniform(64, 512);
        assert_eq!(run(&moderate, &params), AlltoallvAlgorithm::TwoPhaseBruck);
        // Huge blocks → the vendor pairwise path.
        let huge = SizeMatrix::uniform(8, 1 << 20);
        assert_eq!(run(&huge, &params), AlltoallvAlgorithm::Vendor);
        // Degenerate small P: log P ≈ P, padding is as good as it gets.
        let small_p = SizeMatrix::generate(Distribution::Uniform, 1, 8, 512);
        assert_eq!(run(&small_p, &params), AlltoallvAlgorithm::PaddedBruck);
    }

    #[test]
    fn all_ranks_agree_under_skew() {
        // Only one rank holds the large block; the allreduce must still give
        // a unanimous selection.
        let params = CostParams::default();
        let mut rows = vec![vec![2usize; 6]; 6];
        rows[3][1] = 1 << 21;
        let m = SizeMatrix::from_rows(rows);
        assert_eq!(run(&m, &params), AlltoallvAlgorithm::Vendor);
    }
}
