//! Online auto-tuner: α–β closed forms over the engine's knob space, a
//! versioned `tuning.table` persistence format, and the observe → refit →
//! select loop that closes the paper's "more rigorous performance model"
//! call with live [`MeteredComm`](bruck_comm)-style measurements.
//!
//! ## Cost closed forms ([`predict_config`])
//!
//! Every config's predicted time is **affine in the block size**:
//! `cost(cfg, n) = A(cfg, P) + B(cfg, P, dist) · n` — the α-like part `A`
//! (message latencies, injection overheads, allreduce synchronizations) does
//! not depend on `n`, and the β-like part `B` (bandwidth, memcpy, datatype
//! engine, scaled by the distribution's density) multiplies it. Affinity is
//! what makes tuner selection analyzable: for any two configs the winner
//! flips at most once along the `n` axis, at
//! `N* = (A₂ − A₁) / (B₁ − B₂)` — the §4 crossover the regression test pins.
//!
//! Per knob: the Bruck radix trades steps `(r−1)·⌈log_r P⌉` (α) against
//! forwards `⌈log_r P⌉` (β·γ); the throttle window selects `inject` vs the
//! slightly worse `inject_unthrottled`; padding pays the sizing allreduce
//! and ships `N`-byte slots but drops the per-step metadata; the combined
//! coupling (`two_phase_split = false`) pays the §6.1 extra pack/unpack and
//! per-block pointer chasing; the block-view layout pays the final scan that
//! the monolithic layout's in-place delivery avoids.
//!
//! ## `tuning.table` format ([`TuningTable`])
//!
//! Line-oriented text, versioned by its first line (`bruck-tuning v1`).
//! Blank lines and `#` comments are skipped. Each entry line is
//! whitespace-separated `key=value` tokens:
//!
//! ```text
//! bruck-tuning v1
//! # winners per (P, density, distribution)
//! p=8 density=500 dist=uniform config=bruck:r=2:layout=mono:split=meta:pad=never predicted_s=1.9e-5
//! ```
//!
//! Malformed lines fail with line-numbered errors; tokens with *unknown*
//! keys are skipped with a warning so future writers can add fields without
//! breaking old readers.
//!
//! ## Tuner state machine ([`AutoTuner`])
//!
//! `observe` (accumulate keyed measurements) → `refit` (coordinate-descend
//! the machine parameters on the accumulated samples, [`calibrate`]) →
//! `select` (argmin of [`predict_config`] over a candidate set) → emit a
//! [`TuningEntry`] per key. `bruck-tune` drives this loop on EventComm and
//! persists the result.

use bruck_core::{EngineConfig, EngineTopology, IntermediateLayout, PaddingRule};
use bruck_workload::Distribution;

use crate::{calibrate, fit_error, FitSample, MachineModel, NonuniformAlgo};

/// Radix-`r` schedule shape at `p` ranks: `(sub_steps, phases)` —
/// `(r−1)·⌈log_r P⌉` communication sub-steps, `⌈log_r P⌉` forwards per block.
fn schedule_shape(p: usize, radix: usize) -> (f64, f64) {
    let mut weight = 1usize;
    let (mut steps, mut phases) = (0usize, 0usize);
    while weight < p {
        for d in 1..radix {
            if d * weight < p {
                steps += 1;
            }
        }
        phases += 1;
        weight = weight.saturating_mul(radix);
    }
    (steps as f64, phases as f64)
}

/// α-cost of the sizing allreduce (recursive doubling: ~2·log₂P exchanges).
fn allreduce_alpha(p: usize, machine: &MachineModel) -> f64 {
    2.0 * (usize::BITS - p.next_power_of_two().leading_zeros()) as f64 * machine.alpha(p)
}

/// Predicted seconds for one engine config on one workload point.
///
/// Affine in `n_max` (see the [module docs](self)); `dist` contributes only
/// its density (mean block size / `n_max`).
pub fn predict_config(
    cfg: &EngineConfig,
    p: usize,
    n_max: usize,
    dist: Distribution,
    machine: &MachineModel,
) -> f64 {
    let n = n_max as f64;
    let pf = p as f64;
    let density = if p == 0 { 0.0 } else { dist.mean_size(1_000_000, p) / 1_000_000.0 };
    let mean = density * n; // mean block bytes under `dist`
    let a = machine.alpha(p);

    // Would this config pad? Threshold compares the global max block size.
    let pads = match cfg.padding {
        PaddingRule::Never => false,
        PaddingRule::Always => true,
        PaddingRule::Threshold(t) => n_max <= t,
    };

    match cfg.topology {
        // Blocking pairwise: P − 1 synchronized exchanges, all-pairs flows.
        EngineTopology::Oracle => (pf - 1.0) * a + (pf - 1.0) * mean * machine.beta_pair,

        EngineTopology::Direct => {
            let all_pairs = cfg.throttle_window.map_or(true, |w| w >= p.saturating_sub(1));
            let inject = if all_pairs { machine.inject_unthrottled } else { machine.inject };
            let (volume, fixed) = if pads {
                // Pad → N-byte slots each way → scan.
                let pad_scan = 2.0 * pf * n * machine.gamma;
                ((pf - 1.0) * n, allreduce_alpha(p, machine) + pad_scan)
            } else {
                ((pf - 1.0) * mean, 0.0)
            };
            fixed + 2.0 * (pf - 1.0) * inject + volume * machine.beta_pair
        }

        EngineTopology::Bruck => {
            let (steps, phases) = schedule_shape(p, cfg.radix);
            if pads {
                // Pad → uniform radix Bruck (every slot ships N bytes each
                // forward, no metadata) → scan.
                let volume = phases * (pf - 1.0) * n;
                allreduce_alpha(p, machine)
                    + steps * a
                    + volume * machine.beta
                    + (2.0 * pf * n + volume) * machine.gamma
            } else {
                // Each step exchanges a metadata message and a data message;
                // each block is packed, shipped, and unpacked once per
                // forward.
                let volume = phases * (pf - 1.0) * mean;
                let mut cost = 2.0 * steps * a
                    + volume * machine.beta
                    + 2.0 * volume * machine.gamma
                    + allreduce_alpha(p, machine) * f64::from(u8::from(
                        cfg.layout == IntermediateLayout::Monolithic,
                    ));
                if !cfg.two_phase_split {
                    // Combined coupling (§6.1): sizes packed with the data —
                    // an extra pack + unpack pass and per-block pointer
                    // chasing on the receive side.
                    cost += volume * machine.gamma + phases * (pf - 1.0) * machine.dt_block;
                }
                if cfg.layout == IntermediateLayout::BlockViews {
                    // Two-layer layout: final scan over all P blocks plus
                    // per-block view bookkeeping (monolithic delivers in
                    // place).
                    cost += pf * mean * machine.gamma + pf * machine.dt_block;
                }
                cost
            }
        }

        EngineTopology::Leader { group } => {
            let g = group.max(1).min(p) as f64;
            let groups = (pf / g).ceil();
            // Gather to leader, leader exchange of g²-fatter blocks, scatter.
            2.0 * (g - 1.0) * a
                + 2.0 * (g - 1.0) * g * mean * machine.beta
                + 2.0 * (groups - 1.0) * machine.inject
                + (groups - 1.0) * g * g * mean * machine.beta_pair
        }

        // Balanced two-stage: two rounds of direct exchange with a repack.
        EngineTopology::TwoStage => {
            2.0 * (pf - 1.0) * machine.inject
                + 2.0 * (pf - 1.0) * mean * machine.beta
                + 2.0 * pf * mean * machine.gamma
        }
    }
}

/// A workload identity the tuner keys winners by.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TuningKey {
    /// Communicator size.
    pub p: usize,
    /// Workload density (mean block size / max block size) in permille.
    pub density_permille: u32,
    /// Distribution label, whitespace-stripped.
    pub dist: String,
}

impl TuningKey {
    /// Key for a `(P, distribution)` workload. Density comes from the
    /// distribution's closed-form mean, so equal-density workloads share
    /// tuning entries regardless of `n_max`.
    pub fn for_workload(p: usize, dist: Distribution) -> TuningKey {
        let density = if p == 0 { 0.0 } else { dist.mean_size(1_000_000, p) / 1_000_000.0 };
        TuningKey {
            p,
            density_permille: (density * 1000.0).round() as u32,
            dist: dist.label().split_whitespace().collect(),
        }
    }
}

/// One tuned winner: the selected config and its predicted time.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningEntry {
    /// Workload identity.
    pub key: TuningKey,
    /// Winning config.
    pub config: EngineConfig,
    /// Predicted seconds at selection time.
    pub predicted_s: f64,
}

/// A versioned set of [`TuningEntry`]s with a line-oriented text form. See
/// the [module docs](self) for the format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuningTable {
    /// Entries, kept sorted by key.
    pub entries: Vec<TuningEntry>,
}

/// The version header every `tuning.table` must start with.
pub const TUNING_TABLE_HEADER: &str = "bruck-tuning v1";

impl TuningTable {
    /// Insert or replace the entry for `entry.key`.
    pub fn insert(&mut self, entry: TuningEntry) {
        match self.entries.binary_search_by(|e| e.key.cmp(&entry.key)) {
            Ok(i) => self.entries[i] = entry,
            Err(i) => self.entries.insert(i, entry),
        }
    }

    /// The entry for `key`, if tuned.
    pub fn lookup(&self, key: &TuningKey) -> Option<&TuningEntry> {
        self.entries.binary_search_by(|e| e.key.cmp(key)).ok().map(|i| &self.entries[i])
    }

    /// Serialize to the versioned text format (stable: sorted by key).
    pub fn serialize(&self) -> String {
        let mut out = String::from(TUNING_TABLE_HEADER);
        out.push('\n');
        for e in &self.entries {
            out.push_str(&format!(
                "p={} density={} dist={} config={} predicted_s={:e}\n",
                e.key.p,
                e.key.density_permille,
                e.key.dist,
                e.config.key(),
                e.predicted_s,
            ));
        }
        out
    }

    /// Parse the text format. Returns the table plus warnings (one per
    /// skipped unknown key). Malformed lines produce line-numbered errors.
    pub fn parse(text: &str) -> Result<(TuningTable, Vec<String>), String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == TUNING_TABLE_HEADER => {}
            Some((_, h)) => {
                return Err(format!(
                    "line 1: expected header {TUNING_TABLE_HEADER:?}, found {:?}",
                    h.trim()
                ))
            }
            None => return Err("line 1: empty tuning table".to_string()),
        }

        let mut table = TuningTable::default();
        let mut warnings = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut p = None;
            let mut density = None;
            let mut dist = None;
            let mut config = None;
            let mut predicted = None;
            for tok in line.split_whitespace() {
                let (k, v) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: token {tok:?} is not key=value"))?;
                match k {
                    "p" => {
                        p = Some(v.parse::<usize>().map_err(|_| {
                            format!("line {lineno}: bad communicator size {v:?}")
                        })?)
                    }
                    "density" => {
                        density = Some(v.parse::<u32>().map_err(|_| {
                            format!("line {lineno}: bad density permille {v:?}")
                        })?)
                    }
                    "dist" => dist = Some(v.to_string()),
                    "config" => {
                        config = Some(EngineConfig::parse_key(v).map_err(|e| {
                            format!("line {lineno}: bad config key {v:?}: {e}")
                        })?)
                    }
                    "predicted_s" => {
                        predicted = Some(v.parse::<f64>().map_err(|_| {
                            format!("line {lineno}: bad predicted seconds {v:?}")
                        })?)
                    }
                    unknown => warnings
                        .push(format!("line {lineno}: skipping unknown key {unknown:?}")),
                }
            }
            let (Some(p), Some(density_permille), Some(dist), Some(config)) =
                (p, density, dist, config)
            else {
                return Err(format!(
                    "line {lineno}: entry needs p=, density=, dist=, config="
                ));
            };
            table.insert(TuningEntry {
                key: TuningKey { p, density_permille, dist },
                config,
                predicted_s: predicted.unwrap_or(0.0),
            });
        }
        Ok((table, warnings))
    }
}

/// The observe → refit → select state machine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct AutoTuner {
    machine: MachineModel,
    samples: Vec<FitSample>,
}

impl AutoTuner {
    /// Start from a machine preset (refined by [`AutoTuner::refit`]).
    pub fn new(start: MachineModel) -> AutoTuner {
        AutoTuner { machine: start, samples: Vec::new() }
    }

    /// The current (possibly refitted) machine model.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Number of accumulated measurements.
    pub fn observations(&self) -> usize {
        self.samples.len()
    }

    /// Record one measured `(P, n_max, algorithm) → seconds` point — e.g. a
    /// `MeteredComm::with_key`-stamped named-config run.
    pub fn observe(&mut self, p: usize, n: usize, algo: NonuniformAlgo, seconds: f64) {
        self.samples.push(FitSample { p, n, algo, seconds });
    }

    /// Coordinate-descend the machine parameters on everything observed so
    /// far; returns the post-fit mean squared log error ([`fit_error`]).
    pub fn refit(&mut self, dist: Distribution, seed: u64, rounds: usize) -> f64 {
        if !self.samples.is_empty() {
            self.machine = calibrate(&self.samples, dist, seed, &self.machine, rounds);
        }
        fit_error(&self.samples, dist, seed, &self.machine)
    }

    /// The candidate with the lowest [`predict_config`] time (ties break to
    /// the earlier candidate). Returns the winner and its predicted seconds.
    ///
    /// # Panics
    /// If `candidates` is empty.
    pub fn select(
        &self,
        candidates: &[EngineConfig],
        p: usize,
        n_max: usize,
        dist: Distribution,
    ) -> (EngineConfig, f64) {
        assert!(!candidates.is_empty(), "select() needs at least one candidate");
        let mut best = (candidates[0], f64::INFINITY);
        for &cfg in candidates {
            let t = predict_config(&cfg, p, n_max, dist, &self.machine);
            if t < best.1 {
                best = (cfg, t);
            }
        }
        best
    }

    /// Select and wrap as a persistable [`TuningEntry`].
    pub fn tune(
        &self,
        candidates: &[EngineConfig],
        p: usize,
        n_max: usize,
        dist: Distribution,
    ) -> TuningEntry {
        let (config, predicted_s) = self.select(candidates, p, n_max, dist);
        TuningEntry { key: TuningKey::for_workload(p, dist), config, predicted_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recover the affine parts of a config's cost: `(A, B)` with
    /// `cost(n) = A + B·n`.
    fn affine_parts(cfg: &EngineConfig, p: usize, dist: Distribution, m: &MachineModel) -> (f64, f64) {
        let a = predict_config(cfg, p, 0, dist, m);
        let hi = predict_config(cfg, p, 1 << 20, dist, m);
        (a, (hi - a) / (1u64 << 20) as f64)
    }

    #[test]
    fn costs_are_affine_in_block_size() {
        let m = MachineModel::theta_like();
        for (cfg, _) in EngineConfig::named_points() {
            let (a, b) = affine_parts(&cfg, 64, Distribution::Uniform, &m);
            for n in [16usize, 1024, 65536] {
                let want = a + b * n as f64;
                let got = predict_config(&cfg, 64, n, Distribution::Uniform, &m);
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1e-12),
                    "{}: {got} vs affine {want} at n={n}",
                    cfg.key()
                );
            }
        }
    }

    #[test]
    fn tuner_flips_exactly_once_at_the_analytic_crossover() {
        // Pinned fixture: the theta-like machine, P = 1024, uniform density.
        // Two-phase Bruck (low fixed cost, log-factor slope) vs spread-out
        // (huge injection fixed cost, contended but log-free slope) — the §4
        // crossover: two-phase wins small N, spread-out wins large N.
        let m = MachineModel::theta_like();
        let p = 1024;
        let dist = Distribution::Uniform;
        let two_phase = EngineConfig::as_two_phase();
        let spread = EngineConfig::as_spread_out();
        let (a_tp, b_tp) = affine_parts(&two_phase, p, dist, &m);
        let (a_so, b_so) = affine_parts(&spread, p, dist, &m);
        assert!(a_tp < a_so, "two-phase must have the lower fixed cost");
        assert!(b_tp > b_so, "spread-out must have the shallower slope at P=1024");
        let n_star = (a_so - a_tp) / (b_tp - b_so);
        assert!(n_star > 16.0 && n_star < 4e6, "crossover out of range: {n_star}");

        let tuner = AutoTuner::new(m);
        let candidates = [two_phase, spread];
        let mut flips = 0;
        let mut prev: Option<EngineConfig> = None;
        // Geometric grid spanning the crossover.
        for e in 0..40 {
            let n = (4.0 * 1.5f64.powi(e)) as usize;
            let (winner, _) = tuner.select(&candidates, p, n, dist);
            // The selection must agree with the analytic line on each side.
            if (n as f64) < n_star * 0.99 {
                assert_eq!(winner, two_phase, "n={n} < N*={n_star:.0}");
            } else if (n as f64) > n_star * 1.01 {
                assert_eq!(winner, spread, "n={n} > N*={n_star:.0}");
            }
            if prev.is_some_and(|w| w != winner) {
                flips += 1;
            }
            prev = Some(winner);
        }
        assert_eq!(flips, 1, "winner must flip exactly once across the N grid");
    }

    #[test]
    fn refit_improves_selection_inputs() {
        // Synthesize measurements from cori on a theta-started tuner: refit
        // must shrink the log error.
        let truth = MachineModel::cori_like();
        let mut tuner = AutoTuner::new(MachineModel::theta_like());
        let dist = Distribution::Uniform;
        for p in [64usize, 256] {
            for n in [32usize, 512, 4096] {
                for algo in [NonuniformAlgo::Vendor, NonuniformAlgo::TwoPhaseBruck] {
                    tuner.observe(p, n, algo, crate::predict(algo, dist, 7, p, n, &truth));
                }
            }
        }
        let before = fit_error(
            &(0..tuner.observations())
                .map(|i| tuner.samples[i])
                .collect::<Vec<_>>(),
            dist,
            7,
            &MachineModel::theta_like(),
        );
        let after = tuner.refit(dist, 7, 20);
        assert!(after < before, "refit must improve: {before} → {after}");
    }

    #[test]
    fn table_round_trips_to_identity() {
        let mut table = TuningTable::default();
        for (p, dist) in [
            (8, Distribution::Uniform),
            (64, Distribution::Normal),
            (64, Distribution::POWER_LAW_STEEP),
            (1024, Distribution::Windowed { r: 30 }),
        ] {
            table.insert(TuningEntry {
                key: TuningKey::for_workload(p, dist),
                config: EngineConfig::as_two_phase(),
                predicted_s: 1.25e-5 * p as f64,
            });
        }
        table.insert(TuningEntry {
            key: TuningKey::for_workload(8, Distribution::Hotspot { spacing: 4, damping: 8 }),
            config: EngineConfig {
                radix: 4,
                padding: PaddingRule::Threshold(128),
                ..EngineConfig::as_two_phase()
            },
            predicted_s: 3.0e-6,
        });

        let text = table.serialize();
        let (parsed, warnings) = TuningTable::parse(&text).expect("round trip");
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(parsed, table);
        // parse → serialize → parse is also identity.
        assert_eq!(parsed.serialize(), text);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("", "line 1"),
            ("bruck-tuning v2\n", "line 1"),
            (
                "bruck-tuning v1\np=8 density=500 dist=uniform config=oracle\nnot-a-token\n",
                "line 3",
            ),
            ("bruck-tuning v1\np=eight density=500 dist=uniform config=oracle\n", "line 2"),
            ("bruck-tuning v1\np=8 density=500 dist=uniform config=warp:f=9\n", "line 2"),
            ("bruck-tuning v1\np=8 density=500 config=oracle\n", "line 2"),
            ("bruck-tuning v1\n\n# ok\np=8 density=many dist=uniform config=oracle\n", "line 4"),
        ];
        for (text, want) in cases {
            let err = TuningTable::parse(text).expect_err(text);
            assert!(err.starts_with(want), "{text:?}: error {err:?} should start {want:?}");
        }
    }

    #[test]
    fn unknown_keys_warn_but_do_not_fail() {
        let text = "bruck-tuning v1\n\
            p=8 density=500 dist=uniform config=oracle predicted_s=1e-6 flux=9 era=2\n";
        let (table, warnings) = TuningTable::parse(text).expect("unknown keys are skippable");
        assert_eq!(table.entries.len(), 1);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("line 2") && warnings[0].contains("flux"));
    }

    #[test]
    fn insert_replaces_and_lookup_finds() {
        let key = TuningKey::for_workload(8, Distribution::Uniform);
        let mut table = TuningTable::default();
        table.insert(TuningEntry {
            key: key.clone(),
            config: EngineConfig::as_vendor(),
            predicted_s: 2.0,
        });
        table.insert(TuningEntry {
            key: key.clone(),
            config: EngineConfig::as_two_phase(),
            predicted_s: 1.0,
        });
        assert_eq!(table.entries.len(), 1);
        let hit = table.lookup(&key).expect("tuned key");
        assert_eq!(hit.config, EngineConfig::as_two_phase());
        assert!(table.lookup(&TuningKey::for_workload(16, Distribution::Uniform)).is_none());
    }

    #[test]
    fn padding_threshold_switches_the_direct_cost_regime() {
        let m = MachineModel::theta_like();
        let cfg = EngineConfig {
            padding: PaddingRule::Threshold(256),
            ..EngineConfig::as_vendor()
        };
        let below = predict_config(&cfg, 64, 128, Distribution::POWER_LAW_STEEP, &m);
        let unpadded = predict_config(
            &EngineConfig::as_vendor(),
            64,
            128,
            Distribution::POWER_LAW_STEEP,
            &m,
        );
        // Below the threshold the config pads: sparse power-law traffic
        // shipped as full slots plus an allreduce must cost more.
        assert!(below > unpadded);
        // Above the threshold the rule is inert: identical to never-pad.
        let above = predict_config(&cfg, 64, 4096, Distribution::POWER_LAW_STEEP, &m);
        let never = predict_config(
            &EngineConfig::as_vendor(),
            64,
            4096,
            Distribution::POWER_LAW_STEEP,
            &m,
        );
        assert!((above - never).abs() < 1e-15);
    }

    #[test]
    fn radix_trades_alpha_for_beta() {
        let m = MachineModel::theta_like();
        let p = 4096;
        let dist = Distribution::Uniform;
        let r2 = EngineConfig::as_two_phase();
        let r8 = EngineConfig { radix: 8, ..r2 };
        // Radix 8 has more sub-steps (7·log₈P = 28 vs 12) but fewer
        // forwards per block (4 vs 12): at tiny N the α term dominates and
        // radix 2 wins; at huge N the forward volume dominates and radix 8
        // wins.
        assert!(
            predict_config(&r2, p, 8, dist, &m) < predict_config(&r8, p, 8, dist, &m),
            "radix 2 must win at tiny N"
        );
        assert!(
            predict_config(&r8, p, 1 << 20, dist, &m) < predict_config(&r2, p, 1 << 20, dist, &m),
            "radix 8 must win at huge N"
        );
    }
}
