//! Program analysis (§5.2): the kCFA-like iterated fixpoint whose spiky
//! per-iteration loads make algorithm choice interesting — Figure 12 in
//! miniature.
//!
//! Run with: `cargo run --release --example program_analysis`

use bruck_bpra::{kcfa_like_run, KcfaConfig};
use bruck_comm::ThreadComm;
use bruck_core::AlltoallvAlgorithm;

fn main() {
    let p = 12;
    let cfg = KcfaConfig { iterations: 150, base_facts: 20, seed: 0xCFA8 };
    println!("kCFA-like run: P = {p}, {} iterations", cfg.iterations);

    let mut results = Vec::new();
    for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
        let out = ThreadComm::run(p, move |comm| {
            kcfa_like_run(comm, algo, &cfg).expect("analysis run failed")
        })
        .remove(0);
        let total: f64 = out.per_iteration.iter().map(|s| s.comm_time.as_secs_f64()).sum();
        println!(
            "  {:<16} total all-to-all time {:>8.1} ms over {} facts",
            algo.name(),
            total * 1e3,
            out.facts_received
        );
        results.push(out);
    }

    // Per-iteration comparison — the two observations of Figure 12.
    let vendor = &results[0];
    let two_phase = &results[1];
    let wins = vendor
        .per_iteration
        .iter()
        .zip(&two_phase.per_iteration)
        .filter(|(v, t)| t.comm_time < v.comm_time)
        .count();
    println!(
        "\ntwo-phase faster in {wins}/{} iterations (paper: 'a majority of iterations')",
        cfg.iterations
    );
    let ns: Vec<usize> = vendor.per_iteration.iter().map(|s| s.n_max).collect();
    let below_1k = ns.iter().filter(|&&n| n < 1000).count();
    println!(
        "per-iteration max block size N: median {} B, max {} B, {}/{} iterations below 1000 B",
        {
            let mut v = ns.clone();
            v.sort_unstable();
            v[v.len() / 2]
        },
        ns.iter().max().unwrap(),
        below_1k,
        ns.len()
    );
    println!("(small-N iterations are exactly where the Bruck family wins — §5.2)");
}
