//! Spread-out uniform all-to-all: the linear-time baseline (Kang et al.
//! [26]; what MPICH-family libraries use for larger blocks).

use bruck_comm::{CommResult, Communicator};

use super::validate_uniform;
use crate::common::{add_mod, sub_mod, SPREAD_TAG};
use crate::probe::span;

/// Non-blocking point-to-point exchange: every rank posts P−1 sends and P−1
/// receives, with peers spread out by rank offset so no destination is
/// hammered by all sources at once.
pub fn spread_out_alltoall<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();

    // Self block first (a local copy, as MPI implementations do).
    recvbuf[me * block..(me + 1) * block].copy_from_slice(&sendbuf[me * block..(me + 1) * block]);

    {
        let _probe = span("spread_out.send");
        for i in 1..p {
            let dest = add_mod(me, i, p);
            comm.isend(dest, SPREAD_TAG, &sendbuf[dest * block..(dest + 1) * block])?;
        }
    }
    let _probe = span("spread_out.recv");
    for i in 1..p {
        let src = sub_mod(me, i, p);
        let n = comm.recv_into(src, SPREAD_TAG, &mut recvbuf[src * block..(src + 1) * block])?;
        debug_assert_eq!(n, block);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallAlgorithm;

    #[test]
    fn spread_out_correct_for_all_sizes() {
        for p in TEST_SIZES {
            run_and_check(AlltoallAlgorithm::SpreadOut, p, 3);
        }
    }

    #[test]
    fn spread_out_with_large_blocks() {
        run_and_check(AlltoallAlgorithm::SpreadOut, 9, 1024);
    }
}
