#!/bin/sh
# Offline build + test gate. The workspace is hermetic (zero external
# crates), so this must pass with no network access from a fresh checkout.
set -eu
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true
cargo build --workspace --release
cargo test --workspace -q
# Static gates (DESIGN.md §8): source lint with audited allowlist, then the
# protocol-analysis matrix (every algorithm × workload under the model
# communicator). Both exit non-zero on any unallowlisted finding.
cargo run --release -p bruck-check --bin bruck-lint
cargo run --release -p bruck-check --bin bruck-check
# Dynamic fault-tolerance gate (DESIGN.md §9): the algorithm × fault-plan
# soak matrix under a watchdog, asserting the crash-only property. Seeds can
# be overridden with BRUCK_CHAOS_SEEDS=1,2,3.
cargo run --release -p bruck-check --bin bruck-chaos -- --smoke
