//! Property tests: every non-uniform algorithm computes exactly the same
//! exchange as the pairwise reference oracle, over randomized size matrices
//! (including zeros, skew, and non-power-of-two communicators), and every
//! uniform variant agrees with its oracle too.

use bruck_comm::{Communicator, ThreadComm};
use bruck_core::{alltoall, alltoallv, packed_displs, AlltoallAlgorithm, AlltoallvAlgorithm};
use bruck_workload::SizeMatrix;
use proptest::prelude::*;

/// A random square size matrix with arbitrary (possibly zero) block sizes.
fn size_matrix() -> impl Strategy<Value = SizeMatrix> {
    (2usize..12).prop_flat_map(|p| {
        prop::collection::vec(prop::collection::vec(0usize..200, p), p)
            .prop_map(SizeMatrix::from_rows)
    })
}

/// Pattern byte for (src, dst, idx): distinct across blocks.
fn pat(src: usize, dst: usize, idx: usize) -> u8 {
    (src.wrapping_mul(101) ^ dst.wrapping_mul(17) ^ idx) as u8
}

/// Run one algorithm over the matrix; return each rank's receive buffer.
fn run(algo: AlltoallvAlgorithm, m: &SizeMatrix) -> Vec<Vec<u8>> {
    let p = m.p();
    ThreadComm::run(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
        for dst in 0..p {
            for idx in 0..sendcounts[dst] {
                sendbuf[sdispls[dst] + idx] = pat(me, dst, idx);
            }
        }
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
            .unwrap();
        recvbuf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All six real algorithms agree with the reference on random inputs.
    #[test]
    fn all_nonuniform_algorithms_agree(m in size_matrix()) {
        let expect = run(AlltoallvAlgorithm::Reference, &m);
        for algo in [
            AlltoallvAlgorithm::SpreadOut,
            AlltoallvAlgorithm::Vendor,
            AlltoallvAlgorithm::PaddedBruck,
            AlltoallvAlgorithm::PaddedAlltoall,
            AlltoallvAlgorithm::TwoPhaseBruck,
            AlltoallvAlgorithm::Sloav,
            AlltoallvAlgorithm::Hierarchical,
            AlltoallvAlgorithm::RankaTwoStage,
        ] {
            let got = run(algo, &m);
            prop_assert_eq!(&got, &expect, "{} disagrees with reference", algo.name());
        }
    }

    /// All uniform variants agree with the uniform reference.
    #[test]
    fn all_uniform_algorithms_agree(p in 2usize..14, n in 0usize..48) {
        let run_u = |algo: AlltoallAlgorithm| -> Vec<Vec<u8>> {
            ThreadComm::run(p, |comm| {
                let me = comm.rank();
                let mut sendbuf = vec![0u8; p * n];
                for dst in 0..p {
                    for idx in 0..n {
                        sendbuf[dst * n + idx] = pat(me, dst, idx);
                    }
                }
                let mut recvbuf = vec![0u8; p * n];
                alltoall(algo, comm, &sendbuf, &mut recvbuf, n).unwrap();
                recvbuf
            })
        };
        let expect = run_u(AlltoallAlgorithm::Reference);
        for algo in [
            AlltoallAlgorithm::BasicBruck,
            AlltoallAlgorithm::BasicBruckDt,
            AlltoallAlgorithm::ModifiedBruck,
            AlltoallAlgorithm::ModifiedBruckDt,
            AlltoallAlgorithm::ZeroCopyBruckDt,
            AlltoallAlgorithm::ZeroRotationBruck,
            AlltoallAlgorithm::SpreadOut,
        ] {
            let got = run_u(algo);
            prop_assert_eq!(&got, &expect, "{} disagrees with reference", algo.name());
        }
    }

    /// Non-uniform algorithms degenerate correctly to the uniform case.
    #[test]
    fn nonuniform_handles_uniform_matrices(p in 2usize..10, n in 0usize..64) {
        let m = SizeMatrix::uniform(p, n);
        let expect = run(AlltoallvAlgorithm::Reference, &m);
        let got = run(AlltoallvAlgorithm::TwoPhaseBruck, &m);
        prop_assert_eq!(got, expect);
    }
}
