//! Machine models: effective α–β–γ parameters per target system.
//!
//! The paper measures on real Cray/Intel interconnects at up to 32,768 ranks;
//! we replace the hardware with calibrated *effective* parameters (DESIGN.md
//! §1, §5). Parameters are effective rather than physical: e.g. `beta` is the
//! per-rank bandwidth an all-to-all actually achieves under full-system
//! self-congestion, which is far below link speed.

/// Effective cost parameters of one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Human-readable machine name (figures use it as the series suffix).
    pub name: &'static str,
    /// Base latency of one synchronized message exchange (seconds).
    pub alpha0: f64,
    /// Additional per-rank straggle of a synchronized step (seconds/rank):
    /// a full permutation step across `P` ranks completes when the slowest
    /// rank does, and that tail grows with `P`.
    pub alpha_per_rank: f64,
    /// Per-message overhead of overlapped (non-blocking, windowed) messages
    /// (seconds/message).
    pub inject: f64,
    /// Per-message overhead when *all* pairs are in flight unthrottled
    /// (seconds/message); slightly worse than [`MachineModel::inject`].
    pub inject_unthrottled: f64,
    /// Transfer cost per byte for Bruck-style synchronized steps, where each
    /// rank drives a single peer (seconds/byte).
    pub beta: f64,
    /// Transfer cost per byte for all-pairs patterns, where `P − 1`
    /// simultaneous flows contend (seconds/byte). `beta_pair > beta`.
    pub beta_pair: f64,
    /// Local memory-copy cost (pack/unpack/rotation) per byte (seconds/byte).
    pub gamma: f64,
    /// Datatype-engine overhead per described block (seconds/block).
    pub dt_block: f64,
}

impl MachineModel {
    /// Latency of one synchronized message at communicator size `p`.
    #[inline]
    pub fn alpha(&self, p: usize) -> f64 {
        self.alpha0 + self.alpha_per_rank * p as f64
    }

    /// Theta-like preset (Cray XC40 / Aries): calibrated against the paper's
    /// Figure 6/7 magnitudes and crossovers (see EXPERIMENTS.md).
    pub fn theta_like() -> Self {
        MachineModel {
            name: "theta",
            alpha0: 10.0e-6,
            alpha_per_rank: 0.05e-6,
            inject: 8.0e-6,
            inject_unthrottled: 9.5e-6,
            beta: 14.0e-9,      // ≈ 71 MB/s effective per-rank all-to-all
            beta_pair: 71.0e-9, // ≈ 14 MB/s effective under all-pairs contention
            gamma: 0.3e-9,      // ≈ 3.3 GB/s memcpy
            dt_block: 120.0e-9,
        }
    }

    /// Cori-like preset (Cray XC40, Haswell partition): same interconnect
    /// family as Theta, slightly lower latency and higher per-rank bandwidth.
    pub fn cori_like() -> Self {
        MachineModel {
            name: "cori",
            alpha0: 8.0e-6,
            alpha_per_rank: 0.04e-6,
            inject: 6.5e-6,
            inject_unthrottled: 8.0e-6,
            beta: 11.0e-9,
            beta_pair: 55.0e-9,
            gamma: 0.25e-9,
            dt_block: 110.0e-9,
        }
    }

    /// Stampede2-like preset (Intel Omni-Path): higher message latency,
    /// somewhat better sustained pairwise bandwidth.
    pub fn stampede_like() -> Self {
        MachineModel {
            name: "stampede",
            alpha0: 14.0e-6,
            alpha_per_rank: 0.07e-6,
            inject: 10.0e-6,
            inject_unthrottled: 12.0e-6,
            beta: 18.0e-9,
            beta_pair: 80.0e-9,
            gamma: 0.3e-9,
            dt_block: 130.0e-9,
        }
    }

    /// All presets.
    pub fn presets() -> [MachineModel; 3] {
        [Self::theta_like(), Self::cori_like(), Self::stampede_like()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_grows_with_p() {
        let m = MachineModel::theta_like();
        assert!(m.alpha(4096) > m.alpha(128));
        assert!((m.alpha(0) - m.alpha0).abs() < 1e-18);
    }

    #[test]
    fn presets_are_sane() {
        for m in MachineModel::presets() {
            assert!(m.alpha0 > 0.0 && m.beta > 0.0 && m.gamma > 0.0);
            assert!(m.beta_pair > m.beta, "{}: pairwise flows must contend", m.name);
            assert!(m.inject_unthrottled >= m.inject, "{}", m.name);
            // Latency dominates bandwidth for sub-100-byte messages — the
            // premise of the whole paper.
            assert!(m.alpha0 > m.beta * 100.0, "{}", m.name);
        }
    }
}
