//! Self-healing `alltoallv`: run the chosen algorithm under a deadline, and
//! degrade gracefully instead of hanging when ranks stall, crash, or the
//! network misbehaves.
//!
//! ## Protocol
//!
//! 1. **Primary attempt.** The configured algorithm (default: two-phase
//!    Bruck, the paper's §3.2 contribution) runs wrapped in a
//!    [`DeadlineComm`], so every blocking receive observes one shared
//!    wall-clock budget. A healthy exchange completes exactly as it would
//!    unwrapped.
//! 2. **Commit barrier.** A short timed barrier confirms *everyone* finished.
//!    Without it, a rank whose own receives all completed could report
//!    success while a peer is about to fall back — and the fallback needs
//!    every survivor participating.
//! 3. **Fallback.** On [`CommError::Timeout`] / [`CommError::RankFailed`] (or
//!    a failed commit), survivors re-exchange *all* blocks pairwise on a
//!    fresh tag — the abandoned primary may have left any subset of the
//!    receive buffer written, so no block from the primary is trusted. Each
//!    fallback receive has its own per-peer timeout; peers that never deliver
//!    become typed holes in the [`PartialExchange`] report rather than hangs.
//!
//! The crash-only contract: `resilient_alltoallv` either returns
//! [`ExchangeOutcome::Complete`] with a byte-correct buffer, a degraded
//! outcome *naming* every unusable block, or a typed error — it never hangs
//! past its budgets and never silently returns corrupt data.
//!
//! ## Reuse caveat
//!
//! A degraded exchange can leave messages in flight (a dead rank's mailbox,
//! an abandoned primary's data messages, barrier strays). The fallback tag is
//! epoch-versioned ([`ResilientConfig::epoch`]) so *fallback* traffic never
//! crosses between calls, but algorithm and collective tags are not — reuse a
//! communicator after a degraded exchange only with a bumped epoch and
//! algorithm-tag hygiene in mind (the chaos harness uses one world per run).

use std::time::Duration;

use bruck_comm::{CommError, CommResult, Communicator, DeadlineComm, MsgBuf};

use super::{alltoallv, validate_v, AlltoallvAlgorithm};
use crate::common::{add_mod, sub_mod, RESILIENT_EPOCH_SPAN, RESILIENT_FALLBACK_TAG};
use crate::probe::span;

/// The holes left by a degraded exchange (ranks are absolute).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialExchange {
    /// Sources whose block never arrived: the corresponding receive-buffer
    /// block is unusable (it may hold zeros, stale primary bytes, or old
    /// caller data).
    pub missing_sources: Vec<usize>,
    /// Destinations that did not accept our block (send failed); they may or
    /// may not have our data.
    pub undelivered_dests: Vec<usize>,
}

impl PartialExchange {
    /// Whether the exchange actually lost anything.
    pub fn is_lossless(&self) -> bool {
        self.missing_sources.is_empty() && self.undelivered_dests.is_empty()
    }
}

/// How a resilient exchange ended (on this rank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeOutcome {
    /// Primary algorithm finished and the commit barrier confirmed everyone
    /// did: the receive buffer is byte-identical to a fault-free run.
    Complete,
    /// Primary failed but the fallback recovered every block: the receive
    /// buffer is byte-identical to a fault-free run. `trigger` is the fault
    /// that forced the fallback.
    Recovered {
        /// The error that aborted the primary attempt.
        trigger: CommError,
    },
    /// Fallback completed with holes: every block *not* named in `report` is
    /// correct; named ones are unusable.
    Partial {
        /// Which blocks were lost, by rank.
        report: PartialExchange,
        /// The error that aborted the primary attempt.
        trigger: CommError,
    },
}

impl ExchangeOutcome {
    /// Whether every block in the receive buffer is trustworthy.
    pub fn is_lossless(&self) -> bool {
        match self {
            ExchangeOutcome::Complete | ExchangeOutcome::Recovered { .. } => true,
            ExchangeOutcome::Partial { report, .. } => report.is_lossless(),
        }
    }
}

/// Budgets and algorithm choice for [`resilient_alltoallv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientConfig {
    /// Algorithm for the primary attempt.
    pub algorithm: AlltoallvAlgorithm,
    /// Wall-clock budget for the primary attempt (shared across all of its
    /// receives, not per receive).
    pub deadline: Duration,
    /// Budget for the commit barrier after a successful primary.
    pub commit_timeout: Duration,
    /// Per-peer receive budget in the fallback exchange.
    pub peer_timeout: Duration,
    /// Distinguishes successive resilient exchanges on one communicator:
    /// bump it per call so a previous call's fallback strays can never match
    /// this call's fallback receives.
    pub epoch: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            algorithm: AlltoallvAlgorithm::TwoPhaseBruck,
            deadline: Duration::from_secs(4),
            commit_timeout: Duration::from_millis(800),
            peer_timeout: Duration::from_secs(2),
            epoch: 0,
        }
    }
}

/// Is this error a runtime fault (fall back) rather than a caller bug
/// (propagate)?
pub(crate) fn is_fault(e: &CommError) -> bool {
    matches!(e, CommError::Timeout { .. } | CommError::RankFailed { .. })
}

/// Non-uniform all-to-all with graceful degradation. See the
/// [module docs](self) for the protocol and the exact buffer guarantees per
/// [`ExchangeOutcome`].
///
/// Programming errors (bad arguments, invalid ranks) propagate as `Err` just
/// like the plain algorithms; `Err` is otherwise only returned when *this*
/// rank is the failed one and no recovery is possible from here.
#[allow(clippy::too_many_arguments)]
pub fn resilient_alltoallv<C: Communicator + ?Sized>(
    cfg: &ResilientConfig,
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<ExchangeOutcome> {
    validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    let primary = {
        let _probe = span("resilient.primary");
        let dc = DeadlineComm::new(comm, cfg.deadline);
        alltoallv(cfg.algorithm, &dc, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
    }
    .and_then(|()| {
        let _probe = span("resilient.commit");
        DeadlineComm::new(comm, cfg.commit_timeout).barrier()
    });

    let trigger = match primary {
        Ok(()) => return Ok(ExchangeOutcome::Complete),
        Err(e) if is_fault(&e) => e,
        Err(e) => return Err(e),
    };
    // If *we* are the failed rank there is nothing to salvage from here:
    // every further operation would fail the same way.
    if matches!(trigger, CommError::RankFailed { rank } if rank == me) {
        return Err(trigger);
    }

    fallback(cfg, comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls, trigger)
}

/// The degraded path: pairwise re-exchange of every block among survivors,
/// bounded per peer.
#[allow(clippy::too_many_arguments)]
fn fallback<C: Communicator + ?Sized>(
    cfg: &ResilientConfig,
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
    trigger: CommError,
) -> CommResult<ExchangeOutcome> {
    let _probe = span("resilient.fallback");
    let p = comm.size();
    let me = comm.rank();
    let tag = RESILIENT_FALLBACK_TAG + (cfg.epoch % RESILIENT_EPOCH_SPAN);

    // The self block never touches the network.
    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);

    let mut undelivered_dests = Vec::new();
    let mut missing_sources = Vec::new();

    for i in 1..p {
        let dest = add_mod(me, i, p);
        let src = sub_mod(me, i, p);
        let block =
            MsgBuf::copy_from_slice(&sendbuf[sdispls[dest]..sdispls[dest] + sendcounts[dest]]);
        match comm.send_buf(dest, tag, block) {
            Ok(()) => {}
            Err(e @ CommError::RankFailed { rank }) => {
                if rank == me {
                    return Err(e); // we died mid-fallback
                }
                undelivered_dests.push(dest);
            }
            Err(e) if is_fault(&e) => undelivered_dests.push(dest),
            Err(e) => return Err(e),
        }
        match comm.recv_buf_timeout(src, tag, cfg.peer_timeout) {
            Ok(msg) if msg.len() == recvcounts[src] => {
                recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]].copy_from_slice(&msg);
            }
            Ok(_) => missing_sources.push(src), // wrong-epoch stray or corrupt size
            Err(e @ CommError::RankFailed { rank }) => {
                if rank == me {
                    return Err(e);
                }
                missing_sources.push(src);
            }
            Err(e) if is_fault(&e) => missing_sources.push(src),
            Err(e) => return Err(e),
        }
    }

    missing_sources.sort_unstable();
    undelivered_dests.sort_unstable();
    let report = PartialExchange { missing_sources, undelivered_dests };
    if report.is_lossless() {
        Ok(ExchangeOutcome::Recovered { trigger })
    } else {
        Ok(ExchangeOutcome::Partial { report, trigger })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonuniform::testutil::{build_send, check_recv, pattern};
    use crate::packed_displs;
    use bruck_comm::{
        EdgeFaults, FaultComm, FaultPlan, ReliableComm, ReliableConfig, ThreadComm,
    };
    use bruck_workload::{Distribution, SizeMatrix};

    fn quick_reliable() -> ReliableConfig {
        ReliableConfig {
            ack_timeout: Duration::from_millis(10),
            max_retries: 5,
            backoff_cap: Duration::from_millis(40),
        }
    }

    fn quick_resilient() -> ResilientConfig {
        ResilientConfig {
            deadline: Duration::from_secs(3),
            commit_timeout: Duration::from_millis(500),
            peer_timeout: Duration::from_millis(800),
            ..ResilientConfig::default()
        }
    }

    #[test]
    fn healthy_run_is_complete_and_correct() {
        let p = 5;
        let m = SizeMatrix::generate(Distribution::Uniform, 3, p, 64);
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, &m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            let out = resilient_alltoallv(
                &quick_resilient(),
                comm,
                &sendbuf,
                &sendcounts,
                &sdispls,
                &mut recvbuf,
                &recvcounts,
                &rdispls,
            )
            .unwrap();
            assert_eq!(out, ExchangeOutcome::Complete);
            check_recv(me, &m, &recvbuf, &rdispls);
        });
    }

    #[test]
    fn lossy_network_still_completes_under_reliable_layer() {
        let p = 4;
        let m = SizeMatrix::generate(Distribution::Uniform, 7, p, 32);
        ThreadComm::run(p, |comm| {
            let fc = FaultComm::new(
                comm,
                FaultPlan::new(21).with_drop(0.08).with_duplicate(0.08).with_corrupt(0.05),
            );
            let rc = ReliableComm::with_config(&fc, quick_reliable());
            let me = rc.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, &m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            let out = resilient_alltoallv(
                &quick_resilient(),
                &rc,
                &sendbuf,
                &sendcounts,
                &sdispls,
                &mut recvbuf,
                &recvcounts,
                &rdispls,
            )
            .unwrap();
            assert!(out.is_lossless(), "lossless expected, got {out:?}");
            check_recv(me, &m, &recvbuf, &rdispls);
            rc.quiesce(Duration::from_millis(100), Duration::from_secs(2)).unwrap();
        });
    }

    #[test]
    fn crashed_rank_becomes_typed_holes_not_a_hang() {
        let p = 4;
        let dead = 3usize;
        let n = 16usize; // uniform block size keeps expectations simple
        let outcomes = ThreadComm::run(p, move |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(5).with_crash(dead, 2));
            let rc = ReliableComm::with_config(&fc, quick_reliable());
            let me = rc.rank();
            let sendcounts = vec![n; p];
            let sdispls = packed_displs(&sendcounts);
            let mut sendbuf = vec![0u8; n * p];
            for dst in 0..p {
                for idx in 0..n {
                    sendbuf[sdispls[dst] + idx] = pattern(me, dst, idx);
                }
            }
            let recvcounts = vec![n; p];
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; n * p];
            let cfg = ResilientConfig {
                deadline: Duration::from_millis(1500),
                commit_timeout: Duration::from_millis(300),
                peer_timeout: Duration::from_millis(500),
                ..ResilientConfig::default()
            };
            let out = resilient_alltoallv(
                &cfg, &rc, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            );
            let _ = rc.quiesce(Duration::from_millis(100), Duration::from_secs(1));
            // Verify whatever the outcome says is trustworthy, right here on
            // the rank: blocks not named missing must be byte-correct.
            match &out {
                Ok(ExchangeOutcome::Complete) | Ok(ExchangeOutcome::Recovered { .. }) => {
                    for src in 0..p {
                        for idx in 0..n {
                            assert_eq!(recvbuf[rdispls[src] + idx], pattern(src, me, idx));
                        }
                    }
                }
                Ok(ExchangeOutcome::Partial { report, .. }) => {
                    assert!(!report.missing_sources.contains(&me), "self block never missing");
                    for src in (0..p).filter(|s| !report.missing_sources.contains(s)) {
                        for idx in 0..n {
                            assert_eq!(
                                recvbuf[rdispls[src] + idx],
                                pattern(src, me, idx),
                                "rank {me}: non-hole block from {src} must be intact"
                            );
                        }
                    }
                }
                Err(e) => assert!(
                    matches!(e, CommError::RankFailed { .. } | CommError::Timeout { .. }),
                    "only typed fault errors allowed, got {e:?}"
                ),
            }
            (me, out.is_ok())
        });
        // The dead rank must have failed; at least one survivor must have
        // produced a usable (possibly partial) outcome.
        for (me, ok) in &outcomes {
            if *me == dead {
                assert!(!ok, "crashed rank cannot report success");
            }
        }
        assert!(outcomes.iter().any(|(me, ok)| *me != dead && *ok));
    }

    #[test]
    fn partial_report_names_exactly_the_crashed_rank() {
        // A single scripted crash must produce surgical reports on every
        // survivor: the dead rank is the *only* hole on either side, and every
        // survivor-pair block is byte-intact. Budgets are sized so fallback
        // skew (a survivor stuck in its dead-peer timeout while another waits
        // on it) stays well inside the per-peer window.
        let p = 4;
        let dead = 2usize;
        let n = 16usize;
        let outcomes = ThreadComm::run(p, move |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(9).with_crash(dead, 1));
            let rc = ReliableComm::with_config(
                &fc,
                ReliableConfig {
                    ack_timeout: Duration::from_millis(5),
                    max_retries: 3,
                    backoff_cap: Duration::from_millis(20),
                },
            );
            let me = rc.rank();
            let sendcounts = vec![n; p];
            let sdispls = packed_displs(&sendcounts);
            let mut sendbuf = vec![0u8; n * p];
            for dst in 0..p {
                for idx in 0..n {
                    sendbuf[sdispls[dst] + idx] = pattern(me, dst, idx);
                }
            }
            let recvcounts = vec![n; p];
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; n * p];
            let cfg = ResilientConfig {
                deadline: Duration::from_millis(800),
                commit_timeout: Duration::from_millis(200),
                peer_timeout: Duration::from_millis(1500),
                ..ResilientConfig::default()
            };
            let out = resilient_alltoallv(
                &cfg, &rc, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            );
            let _ = rc.quiesce(Duration::from_millis(100), Duration::from_secs(1));
            if me != dead {
                match &out {
                    Ok(ExchangeOutcome::Partial { report, .. }) => {
                        assert_eq!(
                            report.missing_sources,
                            vec![dead],
                            "rank {me}: the crashed rank is the only legal receive hole"
                        );
                        assert!(
                            report.undelivered_dests.iter().all(|d| *d == dead),
                            "rank {me}: sends may only fail toward the crashed rank, got {:?}",
                            report.undelivered_dests
                        );
                    }
                    other => panic!("rank {me}: expected a Partial outcome, got {other:?}"),
                }
                // Every survivor-pair block (including self) must be intact.
                for src in (0..p).filter(|s| *s != dead) {
                    for idx in 0..n {
                        assert_eq!(
                            recvbuf[rdispls[src] + idx],
                            pattern(src, me, idx),
                            "rank {me}: survivor block from {src} must be intact"
                        );
                    }
                }
            }
            (me, out.is_ok())
        });
        for (me, ok) in &outcomes {
            assert_eq!(*me != dead, *ok, "only survivors report usable outcomes");
        }
    }

    #[test]
    fn programming_errors_propagate_not_degrade() {
        ThreadComm::run(2, |comm| {
            let cfg = quick_resilient();
            let mut recvbuf = vec![0u8; 4];
            // sendcounts has the wrong length: caller bug, not a fault.
            let err = resilient_alltoallv(
                &cfg,
                comm,
                &[0u8; 4],
                &[4],
                &[0],
                &mut recvbuf,
                &[2, 2],
                &[0, 2],
            )
            .unwrap_err();
            assert!(matches!(err, CommError::BadArgument(_)));
        });
    }

    #[test]
    fn stalled_rank_within_deadline_still_completes() {
        let p = 3;
        let m = SizeMatrix::generate(Distribution::Uniform, 11, p, 24);
        ThreadComm::run(p, |comm| {
            // Rank 1 freezes for 150ms mid-exchange; deadline is 3s, so the
            // primary must absorb the stall and complete.
            let fc = FaultComm::new(comm, FaultPlan::new(2).with_stall(1, 2, 150));
            let rc = ReliableComm::with_config(&fc, quick_reliable());
            let me = rc.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, &m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            let out = resilient_alltoallv(
                &quick_resilient(),
                &rc,
                &sendbuf,
                &sendcounts,
                &sdispls,
                &mut recvbuf,
                &recvcounts,
                &rdispls,
            )
            .unwrap();
            assert!(out.is_lossless(), "stall must be absorbed, got {out:?}");
            check_recv(me, &m, &recvbuf, &rdispls);
            rc.quiesce(Duration::from_millis(100), Duration::from_secs(1)).unwrap();
        });
    }

    #[test]
    fn fallback_recovers_when_one_edge_is_dead_for_the_primary() {
        // Drop every message on edge 0→1 *at the raw layer below the
        // reliable wrapper's view*: the reliable layer exhausts its retries,
        // the primary aborts with RankFailed, and the fallback (same dead
        // edge) records the hole — while all healthy edges recover.
        let p = 3;
        let n = 8usize;
        ThreadComm::run(p, move |comm| {
            let plan = FaultPlan::new(1)
                .with_edge(0, 1, EdgeFaults { drop: 1.0, ..EdgeFaults::default() });
            let fc = FaultComm::new(comm, plan);
            let rc = ReliableComm::with_config(
                &fc,
                ReliableConfig {
                    ack_timeout: Duration::from_millis(5),
                    max_retries: 3,
                    backoff_cap: Duration::from_millis(20),
                },
            );
            let me = rc.rank();
            let sendcounts = vec![n; p];
            let sdispls = packed_displs(&sendcounts);
            let mut sendbuf = vec![0u8; n * p];
            for dst in 0..p {
                for idx in 0..n {
                    sendbuf[sdispls[dst] + idx] = pattern(me, dst, idx);
                }
            }
            let recvcounts = vec![n; p];
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; n * p];
            let cfg = ResilientConfig {
                deadline: Duration::from_millis(1200),
                commit_timeout: Duration::from_millis(300),
                peer_timeout: Duration::from_millis(400),
                ..ResilientConfig::default()
            };
            let out = resilient_alltoallv(
                &cfg, &rc, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            );
            let _ = rc.quiesce(Duration::from_millis(100), Duration::from_secs(1));
            if let Ok(outcome) = &out {
                // Whatever survived must be byte-correct. Rank 1 should list
                // source 0 as a hole if it reports Partial.
                let holes = match outcome {
                    ExchangeOutcome::Partial { report, .. } => report.missing_sources.clone(),
                    _ => Vec::new(),
                };
                for src in (0..p).filter(|s| !holes.contains(s)) {
                    for idx in 0..n {
                        assert_eq!(
                            recvbuf[rdispls[src] + idx],
                            pattern(src, me, idx),
                            "rank {me}: block from {src}"
                        );
                    }
                }
                if me == 1 {
                    assert!(
                        !outcome.is_lossless(),
                        "rank 1 cannot have received from 0 over a dead edge: {outcome:?}"
                    );
                }
            }
        });
    }
}
