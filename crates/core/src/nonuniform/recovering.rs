//! Multi-epoch self-healing `alltoallv`: detect → agree → shrink → retry.
//!
//! [`resilient_alltoallv`](super::resilient_alltoallv) degrades gracefully
//! *within* one exchange — it reports typed holes instead of hanging — but it
//! leaves the membership question to the caller: the dead rank is still part
//! of the world, and the next exchange will trip over it again. This module
//! closes that loop, ULFM-style:
//!
//! 1. **Execute.** Negotiate an [`ExchangePlan`] (counts handshake under a
//!    deadline — a rank can die *here*, between planning and data movement)
//!    and run `resilient_alltoallv` on the current survivor view, wrapped in
//!    a [`ShrinkComm`] whose epoch isolates this attempt's traffic from every
//!    other attempt's strays.
//! 2. **Detect.** On a degraded outcome, run [`detect_failures`]: seeded
//!    heartbeats over the current view with suspicion timeouts, on the trait
//!    clock.
//! 3. **Agree.** Feed the local suspicions to [`agree_survivors`], which
//!    floods bitmaps until every live rank holds the identical survivor set
//!    (tolerating further deaths *during* agreement).
//! 4. **Repair.** Renumber the survivors into a dense world
//!    ([`ShrinkComm`]), project the send buffer onto the survivor columns,
//!    and remap the pending plan with
//!    [`ExchangePlan::remap_survivors`] — re-negotiating only after *dirty*
//!    attempts (where plan possession may be asymmetric); a clean membership
//!    shrink keeps every survivor's plan and just remaps it.
//! 5. **Retry.** Back off per the configured [`RetryPolicy`] (seeded jitter,
//!    on the trait clock) and re-execute on the repaired world.
//!
//! The caller observes one of three endings: a lossless buffer on the
//! original view ([`RecoveryOutcome::Complete`]), a lossless buffer on a
//! *shrunken* view plus an MTTR breakdown ([`RecoveryOutcome::Recovered`]),
//! or a typed error (this rank died / was evicted / retries exhausted).
//! Because every wait is on the trait clock, the entire cycle is
//! deterministic and replayable under `SimComm`, and the MTTR numbers are
//! virtual-time exact.

use std::time::Duration;

use bruck_comm::{
    agree_survivors, detect_failures, AgreeConfig, CommError, CommResult, Communicator,
    DeadlineComm, DetectorConfig, ExchangePlan, RetryPolicy, ShrinkComm, Suspicion,
};

use super::resilient::{is_fault, resilient_alltoallv, ExchangeOutcome, ResilientConfig};
use super::packed_displs;
use crate::probe::span;

/// Budgets for every stage of the detect → agree → shrink → retry cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveringConfig {
    /// Per-attempt exchange budgets (its `epoch` field is ignored — the
    /// recovery loop stamps each attempt with its own epoch).
    pub resilient: ResilientConfig,
    /// Deadline for the counts handshake of each attempt.
    pub negotiate_timeout: Duration,
    /// Heartbeat failure-detector policy.
    pub detector: DetectorConfig,
    /// Survivor-agreement policy.
    pub agreement: AgreeConfig,
    /// Backoff between attempts; its `attempts()` bounds the exchange
    /// attempts (first try included).
    pub retry: RetryPolicy,
    /// Base epoch: attempt `k` runs at `epoch + k`. Bump it across calls on
    /// one communicator so no two recovering exchanges ever share tags.
    pub epoch: u32,
}

impl RecoveringConfig {
    /// Resize the detector and agreement windows so they cover the
    /// worst-case skew with which ranks abort one attempt and enter the
    /// confirmation round.
    ///
    /// Ranks reach the detector at very different times after a failed
    /// exchange: one aborts at the negotiate deadline, another only after
    /// the primary deadline, the commit barrier, and a string of fallback
    /// peer timeouts. A detector window smaller than that skew makes the
    /// early ranks give up on the laggards — false suspicion, mutual
    /// eviction, and a view that collapses to singletons. The generous
    /// windows are nearly free where it matters: the detector's all-proven
    /// early exit and the agreement's anchored round deadlines both finish
    /// at message speed when everyone is alive, so only genuine failures
    /// pay the window (and under `SimComm` virtual time even that is free).
    pub fn with_derived_windows(mut self) -> Self {
        let r = &self.resilient;
        let skew = self
            .negotiate_timeout
            .max(r.deadline + r.commit_timeout + 2 * r.peer_timeout);
        let window = skew + skew / 4;
        self.detector.window = window;
        self.detector.heartbeat = (window / 8).max(Duration::from_millis(1));
        self.detector.poll = (window / 1000).max(Duration::from_micros(50));
        self.agreement.round_timeout = window;
        self.agreement.poll = self.detector.poll;
        self
    }
}

impl Default for RecoveringConfig {
    fn default() -> Self {
        RecoveringConfig {
            resilient: ResilientConfig::default(),
            negotiate_timeout: Duration::from_secs(1),
            detector: DetectorConfig::default(),
            agreement: AgreeConfig::default(),
            retry: RetryPolicy::exponential(
                Duration::from_millis(50),
                Duration::from_millis(400),
                3,
            )
            .with_jitter(250, 0x5EED_BACC_0FF5_0001),
            epoch: 0,
        }
        .with_derived_windows()
    }
}

/// Mean-time-to-recovery breakdown on the trait clock (virtual-time exact
/// under the simulator). Detect / agree / repair accumulate across recovery
/// cycles; `reexecute` is the duration of the final, successful attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mttr {
    /// Time inside [`detect_failures`].
    pub detect: Duration,
    /// Time inside [`agree_survivors`].
    pub agree: Duration,
    /// Time spent renumbering, projecting buffers, and remapping the plan.
    pub repair: Duration,
    /// Duration of the successful re-execution (negotiate-if-needed + data).
    pub reexecute: Duration,
}

impl Mttr {
    /// Total detect → agree → repair → re-execute time.
    pub fn total(&self) -> Duration {
        self.detect + self.agree + self.repair + self.reexecute
    }
}

/// How a recovering exchange ended (on this rank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No membership change was needed: the buffer is lossless on the view
    /// the caller passed in.
    Complete,
    /// One or more recovery cycles ran; the buffer is lossless on the
    /// (possibly shrunken) final view.
    Recovered {
        /// Parent ranks evicted across all cycles, ascending.
        evicted: Vec<usize>,
        /// Recovery cycles executed (detect → agree → repair).
        cycles: u32,
        /// Exchange attempts consumed, first try included.
        attempts: u32,
        /// Where the recovery time went.
        mttr: Mttr,
    },
}

/// A completed recovering exchange: the received bytes plus the view they
/// are indexed by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Received bytes, packed by `recvcounts`.
    pub recvbuf: Vec<u8>,
    /// Bytes received from each member of `view`, in `view` order.
    pub recvcounts: Vec<usize>,
    /// Packed displacements for `recvcounts`.
    pub rdispls: Vec<usize>,
    /// The final survivor view: sorted parent ranks, including the caller.
    /// Feed it back as the next call's `view` for multi-epoch tenancy.
    pub view: Vec<usize>,
    /// What it took.
    pub outcome: RecoveryOutcome,
}

/// Self-healing non-uniform all-to-all over the `view` subset of `comm`'s
/// world. `sendcounts[i]` bytes go to parent rank `view[i]`; `sendbuf` is
/// packed by `sendcounts`. See the [module docs](self) for the protocol.
///
/// Errors are crash-only: bad arguments, this rank dead or evicted, or
/// retries exhausted (the last fault). A `Recovered` outcome's buffer is
/// byte-identical to a fault-free exchange run directly on the final view.
pub fn recovering_alltoallv<C: Communicator + ?Sized>(
    cfg: &RecoveringConfig,
    comm: &C,
    view: &[usize],
    sendcounts: &[usize],
    sendbuf: &[u8],
) -> CommResult<Recovery> {
    let me = comm.rank();
    if view.is_empty() || view.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CommError::BadArgument("view must be sorted, unique, non-empty"));
    }
    if view.iter().any(|&r| r >= comm.size()) {
        return Err(CommError::BadArgument("view rank out of range"));
    }
    if !view.contains(&me) {
        return Err(CommError::BadArgument("calling rank not in view"));
    }
    if sendcounts.len() != view.len() {
        return Err(CommError::BadArgument("sendcounts.len() != view.len()"));
    }
    if sendbuf.len() != sendcounts.iter().sum::<usize>() {
        return Err(CommError::BadArgument("sendbuf must be packed by sendcounts"));
    }

    let names_me = |e: &CommError| matches!(e, CommError::RankFailed { rank } if *rank == me);

    let mut view = view.to_vec();
    let mut counts = sendcounts.to_vec();
    let mut buf = sendbuf.to_vec();
    let mut plan: Option<ExchangePlan> = None;
    let mut mttr = Mttr::default();
    let mut evicted: Vec<usize> = Vec::new();
    let mut cycles = 0u32;
    let mut last_fault: Option<CommError> = None;

    for attempt in 0..cfg.retry.attempts() {
        if attempt > 0 {
            cfg.retry.sleep_before_retry(comm, attempt - 1);
        }
        let epoch = cfg.epoch.wrapping_add(attempt);
        let exec_start = comm.now();
        let cur = ShrinkComm::new(comm, view.clone(), epoch)?;

        // One attempt: negotiate (if no plan survived) then exchange. Any
        // fault that does not name *us* becomes this rank's abort vote.
        let local: Result<Vec<u8>, CommError> = 'attempt: {
            let _probe = span("recovering.attempt");
            if plan.is_none() {
                let dc = DeadlineComm::new(&cur, cfg.negotiate_timeout);
                match ExchangePlan::negotiate_isolated(&dc, counts.clone(), epoch) {
                    Ok(p) => plan = Some(p),
                    Err(e) => break 'attempt Err(e),
                }
            }
            let Some(pl) = plan.as_ref() else {
                break 'attempt Err(CommError::BadArgument("no plan after negotiation"));
            };
            let mut recvbuf = pl.alloc_recvbuf();
            let rcfg = ResilientConfig { epoch, ..cfg.resilient };
            match resilient_alltoallv(
                &rcfg,
                &cur,
                &buf,
                pl.sendcounts(),
                pl.sdispls(),
                &mut recvbuf,
                pl.recvcounts(),
                pl.rdispls(),
            ) {
                Ok(out) if out.is_lossless() => Ok(recvbuf),
                Ok(ExchangeOutcome::Partial { trigger, .. }) => Err(trigger),
                Ok(_) => unreachable!("non-lossless outcomes are Partial"),
                Err(e) => Err(e),
            }
        };
        if let Err(e) = &local {
            if !is_fault(e) || names_me(e) {
                return Err(local.unwrap_err());
            }
        }

        // Confirmation: EVERY attempt — success or not — ends in detect +
        // agreement, because failure evidence is asymmetric (one rank's
        // fallback can be lossless while a peer's has holes; a commit
        // barrier can complete on some ranks and time out on others). The
        // flooded dirty vote turns those local verdicts into one global
        // decision: commit only if the view is intact and nobody failed.
        // The detector starts from empty suspicions on purpose — fault
        // errors name ranks in a mix of parent and dense numbering
        // depending on which layer raised them, so membership verdicts
        // come only from the detector's own probes.
        let n = view.len();
        let members: Vec<usize> = (0..n).collect();
        let t0 = comm.now();
        let susp = {
            let _probe = span("recovering.detect");
            detect_failures(&cur, &members, epoch, &cfg.detector, &Suspicion::none(n))?
        };
        let t1 = comm.now();
        let agreed = {
            let _probe = span("recovering.agree");
            agree_survivors(&cur, &members, epoch, &cfg.agreement, &susp, local.is_err())?
        };
        let t2 = comm.now();
        if agreed.evicted_me {
            return Err(CommError::RankFailed { rank: me });
        }

        // `agreed.survivors` are dense positions into the current view.
        let keep = agreed.survivors;
        if keep.len() == n && !agreed.dirty {
            // Unanimous commit. A clean, full-view decision implies every
            // survivor — us included — had a lossless exchange: our dirty
            // vote was part of the decided flood.
            let recvbuf = match local {
                Ok(b) => b,
                Err(e) => return Err(e),
            };
            let Some(pl) = plan.as_ref() else {
                return Err(CommError::BadArgument("committed attempt has no plan"));
            };
            let outcome = if cycles == 0 {
                RecoveryOutcome::Complete
            } else {
                mttr.reexecute = comm.now().saturating_sub(exec_start);
                RecoveryOutcome::Recovered {
                    evicted: evicted.clone(),
                    cycles,
                    attempts: attempt + 1,
                    mttr,
                }
            };
            return Ok(Recovery {
                recvbuf,
                recvcounts: pl.recvcounts().to_vec(),
                rdispls: pl.rdispls().to_vec(),
                view,
                outcome,
            });
        }

        // Abort: at least one survivor failed, or the membership shrank.
        cycles = cycles.wrapping_add(1);
        last_fault = Some(match local {
            Err(e) => e,
            Ok(_) => CommError::Timeout {
                src: me,
                tag: 0,
                waited: comm.now().saturating_sub(exec_start),
            },
        });
        if agreed.dirty {
            // A dirty attempt can die mid-negotiation at some ranks and
            // after it at others, leaving plan possession asymmetric; a
            // retry where only the plan-less ranks re-negotiate hangs into
            // exhaustion. The agreed dirty bit is the uniform signal: every
            // survivor drops its plan and the group re-negotiates together.
            // A clean shrink (`!dirty`) means every survivor was lossless,
            // hence negotiated, so the remap below is uniform.
            plan = None;
        }
        if keep.len() < n {
            let _probe = span("recovering.repair");
            let alive: Vec<bool> = {
                let mut mask = vec![false; n];
                for &i in &keep {
                    mask[i] = true;
                }
                mask
            };
            evicted.extend((0..n).filter(|&i| !alive[i]).map(|i| view[i]));
            evicted.sort_unstable();
            let displs = packed_displs(&counts);
            let mut nbuf = Vec::with_capacity(buf.len());
            let mut ncounts = Vec::with_capacity(keep.len());
            for &i in &keep {
                nbuf.extend_from_slice(&buf[displs[i]..displs[i] + counts[i]]);
                ncounts.push(counts[i]);
            }
            buf = nbuf;
            counts = ncounts;
            plan = match plan.take() {
                Some(p) => Some(p.remap_survivors(&alive)?),
                None => None,
            };
            view = keep.iter().map(|&i| view[i]).collect();
        }
        mttr.detect += t1.saturating_sub(t0);
        mttr.agree += t2.saturating_sub(t1);
        mttr.repair += comm.now().saturating_sub(t2);
    }

    // `retry.attempts()` is at least 1, so the loop ran and set a fault.
    Err(last_fault.unwrap_or(CommError::BadArgument("retry policy allows no attempts")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonuniform::testutil::pattern;
    use crate::nonuniform::AlltoallvAlgorithm;
    use bruck_comm::{FaultComm, FaultPlan, SimComm, SimConfig};

    fn quick() -> RecoveringConfig {
        RecoveringConfig {
            resilient: ResilientConfig {
                algorithm: AlltoallvAlgorithm::TwoPhaseBruck,
                deadline: Duration::from_millis(600),
                commit_timeout: Duration::from_millis(200),
                peer_timeout: Duration::from_millis(300),
                epoch: 0,
            },
            negotiate_timeout: Duration::from_millis(400),
            // Virtual time is free under the simulator, so both windows are
            // sized generously: survivors leave a degraded exchange up to a
            // full peer timeout apart, and the detector / agreement windows
            // must absorb that skew without false suspicions.
            detector: DetectorConfig {
                window: Duration::from_millis(1200),
                heartbeat: Duration::from_millis(150),
                seed: 7,
                poll: Duration::from_millis(1),
            },
            agreement: AgreeConfig {
                round_timeout: Duration::from_millis(900),
                stable_rounds: 2,
                max_rounds: 32,
                poll: Duration::from_millis(1),
            },
            retry: RetryPolicy::exponential(
                Duration::from_millis(10),
                Duration::from_millis(40),
                3,
            ),
            epoch: 0,
        }
    }

    /// Packed (sendbuf, sendcounts) from `src` to each member of `view`,
    /// stamped with the parent-rank pattern.
    fn build_view_send(src: usize, view: &[usize], n: usize) -> (Vec<u8>, Vec<usize>) {
        let counts = vec![n; view.len()];
        let mut buf = Vec::with_capacity(n * view.len());
        for &dst in view {
            for idx in 0..n {
                buf.push(pattern(src, dst, idx));
            }
        }
        (buf, counts)
    }

    #[test]
    fn healthy_run_is_complete_on_the_original_view() {
        let p = 4;
        let n = 8;
        let report = SimComm::try_run(p, &SimConfig::from_seed(3), move |comm| {
            let me = comm.rank();
            let view: Vec<usize> = (0..p).collect();
            let (buf, counts) = build_view_send(me, &view, n);
            recovering_alltoallv(&quick(), comm, &view, &counts, &buf)
        });
        for (rank, out) in report.outcomes.iter().enumerate() {
            let rec = out.as_ref().expect("no panic").as_ref().unwrap();
            assert_eq!(rec.outcome, RecoveryOutcome::Complete);
            assert_eq!(rec.view, (0..p).collect::<Vec<_>>());
            for (i, &src) in rec.view.iter().enumerate() {
                for idx in 0..n {
                    assert_eq!(rec.recvbuf[rec.rdispls[i] + idx], pattern(src, rank, idx));
                }
            }
        }
    }

    #[test]
    fn mid_exchange_crash_recovers_on_the_shrunken_view() {
        let p = 5;
        let n = 8;
        let dead = 2usize;
        let report = SimComm::try_run(p, &SimConfig::from_seed(11), move |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(4).with_crash(dead, 20));
            let me = fc.rank();
            let view: Vec<usize> = (0..p).collect();
            let (buf, counts) = build_view_send(me, &view, n);
            recovering_alltoallv(&quick(), &fc, &view, &counts, &buf)
        });
        for (rank, out) in report.outcomes.iter().enumerate() {
            let res = out.as_ref().expect("no panic");
            if rank == dead {
                assert!(
                    matches!(res, Err(CommError::RankFailed { rank }) if *rank == dead),
                    "dead rank must error, got {res:?}"
                );
                continue;
            }
            let rec = res.as_ref().unwrap();
            let survivors: Vec<usize> = (0..p).filter(|&r| r != dead).collect();
            assert_eq!(rec.view, survivors, "rank {rank}");
            match &rec.outcome {
                RecoveryOutcome::Recovered { evicted, cycles, attempts, mttr } => {
                    assert_eq!(evicted, &vec![dead], "rank {rank}");
                    assert!(*cycles >= 1 && attempts > cycles, "rank {rank}");
                    assert!(mttr.total() > Duration::ZERO, "rank {rank}");
                }
                other => panic!("rank {rank}: expected Recovered, got {other:?}"),
            }
            for (i, &src) in rec.view.iter().enumerate() {
                for idx in 0..n {
                    assert_eq!(
                        rec.recvbuf[rec.rdispls[i] + idx],
                        pattern(src, rank, idx),
                        "rank {rank}: block from parent {src}"
                    );
                }
            }
        }
    }

    #[test]
    fn crash_during_negotiate_still_recovers() {
        // Op 1 lands inside the counts handshake: the plan never finishes on
        // the dead rank, survivors re-negotiate on the shrunken world.
        let p = 4;
        let n = 6;
        let dead = 1usize;
        let report = SimComm::try_run(p, &SimConfig::from_seed(9), move |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(8).with_crash(dead, 1));
            let me = fc.rank();
            let view: Vec<usize> = (0..p).collect();
            let (buf, counts) = build_view_send(me, &view, n);
            recovering_alltoallv(&quick(), &fc, &view, &counts, &buf)
        });
        for (rank, out) in report.outcomes.iter().enumerate() {
            let res = out.as_ref().expect("no panic");
            if rank == dead {
                assert!(res.is_err());
                continue;
            }
            let rec = res.as_ref().unwrap();
            assert_eq!(rec.view, (0..p).filter(|&r| r != dead).collect::<Vec<_>>());
            assert!(
                matches!(&rec.outcome, RecoveryOutcome::Recovered { evicted, .. } if evicted == &vec![dead]),
                "rank {rank}: {:?}",
                rec.outcome
            );
            for (i, &src) in rec.view.iter().enumerate() {
                for idx in 0..n {
                    assert_eq!(rec.recvbuf[rec.rdispls[i] + idx], pattern(src, rank, idx));
                }
            }
        }
    }

    #[test]
    fn bad_arguments_are_typed_errors() {
        SimComm::try_run(3, &SimConfig::from_seed(0), |comm| {
            let cfg = quick();
            // Unsorted view.
            assert!(matches!(
                recovering_alltoallv(&cfg, comm, &[1, 0, 2], &[0, 0, 0], &[]),
                Err(CommError::BadArgument(_))
            ));
            // Caller missing from view (only an error on the excluded rank).
            if comm.rank() == 2 {
                assert!(matches!(
                    recovering_alltoallv(&cfg, comm, &[0, 1], &[0, 0], &[]),
                    Err(CommError::BadArgument(_))
                ));
            }
            // sendbuf not packed by counts.
            let view: Vec<usize> = (0..3).collect();
            assert!(matches!(
                recovering_alltoallv(&cfg, comm, &view, &[1, 1, 1], &[0u8; 2]),
                Err(CommError::BadArgument(_))
            ));
            Ok::<(), CommError>(())
        });
    }
}
