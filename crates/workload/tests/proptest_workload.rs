//! Property tests for the workload generators, driven by seeded SplitMix64
//! case generation (std-only; see the hermetic-build policy in DESIGN.md).

use bruck_workload::{histogram, DistStats, Distribution, SizeMatrix, SplitMix64};

const CASES: u64 = 48;

fn any_distribution(rng: &mut SplitMix64) -> Distribution {
    match rng.next_usize(6) {
        0 => Distribution::Uniform,
        1 => Distribution::Windowed { r: rng.next_below(101) as u32 },
        2 => Distribution::Normal,
        3 => Distribution::POWER_LAW_STEEP,
        4 => Distribution::POWER_LAW_HEAVY,
        _ => Distribution::Hotspot {
            spacing: rng.next_range(1, 16) as u32,
            damping: rng.next_range(1, 64) as u32,
        },
    }
}

/// Sizes are always within [0, N] and deterministic in (seed, src, dst).
#[test]
fn sizes_bounded_and_deterministic() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB0DD ^ case);
        let dist = any_distribution(&mut rng);
        let seed = rng.next_u64();
        let p = rng.next_range(1, 64) as usize;
        let n_max = rng.next_usize(4096);
        let src = seed as usize % p;
        let row = dist.sample_row(seed, src, p, n_max);
        assert_eq!(row.len(), p);
        for (dst, &s) in row.iter().enumerate() {
            assert!(s <= n_max, "{}: size {s} > {n_max}", dist.label());
            assert_eq!(s, dist.block_size(seed, src, dst, p, n_max));
        }
    }
}

/// Windowed distributions respect their lower bound.
#[test]
fn windowed_lower_bound() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x71D0 ^ case);
        let seed = rng.next_u64();
        let r = rng.next_below(101) as u32;
        let n_max = rng.next_range(1, 2048) as usize;
        let lo = (n_max as f64 * f64::from(100 - r) / 100.0).round() as usize;
        let row = Distribution::Windowed { r }.sample_row(seed, 0, 64, n_max);
        // Allow the rounding boundary itself.
        assert!(row.iter().all(|&s| s + 1 >= lo), "lo={lo} min={:?}", row.iter().min());
    }
}

/// Matrix accessors agree: row/col sums, totals, and the global max.
#[test]
fn matrix_invariants() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3A7C ^ case);
        let dist = any_distribution(&mut rng);
        let seed = rng.next_u64();
        let p = rng.next_range(1, 24) as usize;
        let n_max = rng.next_usize(512);
        let m = SizeMatrix::generate(dist, seed, p, n_max);
        let total_rows: usize = (0..p).map(|r| m.bytes_sent(r)).sum();
        let total_cols: usize = (0..p).map(|c| m.bytes_received(c)).sum();
        assert_eq!(total_rows, m.total_bytes());
        assert_eq!(total_cols, m.total_bytes());
        assert!(m.global_max() <= n_max);
        let stats = DistStats::of_matrix(&m);
        assert_eq!(stats.total, m.total_bytes());
        assert_eq!(stats.count, p * p);
    }
}

/// Histograms partition the population.
#[test]
fn histogram_partitions() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x4157 ^ case);
        let len = rng.next_usize(200);
        let sizes: Vec<usize> = (0..len).map(|_| rng.next_usize(1000)).collect();
        let bins = rng.next_range(1, 20) as usize;
        let h = histogram(&sizes, 1000, bins);
        assert_eq!(h.len(), bins);
        assert_eq!(h.iter().sum::<usize>(), sizes.len());
    }
}

/// Different seeds decorrelate rows (statistically: not identical for
/// non-trivial sizes).
#[test]
fn seeds_change_the_workload() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5EED ^ case);
        let seed = rng.next_u64();
        let a = Distribution::Uniform.sample_row(seed, 0, 256, 1024);
        let b = Distribution::Uniform.sample_row(seed.wrapping_add(1), 0, 256, 1024);
        assert_ne!(a, b);
    }
}
