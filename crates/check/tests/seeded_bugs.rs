//! Seeded-bug regressions: prove `bruck-check` catches, with precise
//! diagnostics, the two protocol-bug classes `ChaosComm` can only find by
//! schedule lottery — tag collisions and deadlock cycles.

use bruck_check::analysis::{analyze, Finding};
use bruck_check::model::extract;
use bruck_comm::{CommResult, Communicator};

/// A deliberately broken two-step ring exchange: both Bruck-style steps tag
/// their messages `TAG` instead of `TAG + step`, so each rank has two
/// different payloads for the same `(src, dst, tag)` key in flight at once.
/// Correctness then rests on non-overtaking alone — the bug class the
/// paper's §4 tag-disjointness argument exists to exclude.
const TAG: u32 = 0x0100;

fn broken_two_step_ring<C: Communicator + ?Sized>(comm: &C, fixed_tags: bool) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    for step in 0..2u32 {
        let tag = if fixed_tags { TAG + step } else { TAG };
        // Distinct payload per step: reordering the two same-key messages
        // would deliver step-1 data to the step-0 receive.
        comm.send(right, tag, &[step as u8, me as u8])?;
        let got = comm.recv(left, tag)?;
        assert_eq!(got[1], left as u8);
    }
    Ok(())
}

#[test]
fn overlapping_step_tags_are_reported_as_collisions() {
    let p = 3;
    let ext = extract(p, |comm| broken_two_step_ring(comm, false));
    assert!(ext.all_completed(), "the broken exchange still *runs*: {:?}", ext.ranks);
    let findings = analyze(&ext);
    let collisions: Vec<_> = findings
        .iter()
        .filter_map(|f| match f {
            Finding::TagCollision { src, dst, tag, .. } => Some((*src, *dst, *tag)),
            _ => None,
        })
        .collect();
    // Precise diagnostics: every rank's ring edge is implicated, with the
    // exact shared tag.
    assert_eq!(collisions.len(), p, "one collision per ring edge: {findings:?}");
    for rank in 0..p {
        assert!(
            collisions.contains(&(rank, (rank + 1) % p, TAG)),
            "missing collision for edge {rank} -> {} tag {TAG:#x}: {collisions:?}",
            (rank + 1) % p
        );
    }
    // No other finding types: the bug is a pure tag-discipline violation.
    assert!(
        findings.iter().all(|f| matches!(f, Finding::TagCollision { .. })),
        "{findings:?}"
    );
}

#[test]
fn per_step_tags_fix_the_collision() {
    let ext = extract(3, |comm| broken_two_step_ring(comm, true));
    assert!(ext.all_completed());
    assert!(analyze(&ext).is_empty());
}

#[test]
fn seeded_deadlock_cycle_is_reported_with_ranks_and_tag() {
    // Cyclic blocking receive: every rank receives from its left neighbour
    // *before* sending to its right — the canonical head-of-line deadlock. A
    // threaded run hangs forever; the model extracts and diagnoses it.
    const DTAG: u32 = 0x0200;
    let p = 5;
    let ext = extract(p, move |comm| {
        let me = comm.rank();
        let left = (me + p - 1) % p;
        let got = comm.recv(left, DTAG)?; // blocks forever on every rank
        comm.send((me + 1) % p, DTAG, &got)?;
        Ok(())
    });
    assert!(!ext.all_completed());
    let findings = analyze(&ext);
    let cycles: Vec<_> = findings
        .iter()
        .filter_map(|f| match f {
            Finding::DeadlockCycle { ranks, tags } => Some((ranks.clone(), tags.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(cycles.len(), 1, "exactly one cycle: {findings:?}");
    let (ranks, tags) = &cycles[0];
    // Precise diagnostics: all five ranks on the cycle, each waiting on its
    // left neighbour, all under the seeded tag.
    assert_eq!(ranks.len(), p);
    assert!(tags.iter().all(|&t| t == DTAG), "{tags:?}");
    for (i, &r) in ranks.iter().enumerate() {
        let next = ranks[(i + 1) % ranks.len()];
        assert_eq!(next, (r + p - 1) % p, "rank {r} waits on its left neighbour");
    }
    // The cycle is the whole story — no spurious unmatched-send noise (no
    // message was ever sent).
    assert!(ext.schedule.messages.is_empty());
}

#[test]
fn partial_deadlock_reports_cycle_and_starved_chain() {
    // Ranks 0 and 1 deadlock on each other; rank 2 waits on rank 1 — blocked
    // behind the cycle without being on it.
    let ext = extract(3, |comm| match comm.rank() {
        0 => comm.recv(1, 7).map(|_| ()),
        1 => {
            let _ = comm.recv(0, 7)?;
            comm.send(0, 7, &[1])?;
            comm.send(2, 8, &[2])
        }
        _ => comm.recv(1, 8).map(|_| ()),
    });
    let findings = analyze(&ext);
    assert!(
        findings.iter().any(|f| matches!(
            f,
            Finding::DeadlockCycle { ranks, .. } if ranks.len() == 2
        )),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| matches!(
            f,
            Finding::OrphanedRecv { rank: 2, src: 1, tag: 8 }
        )),
        "{findings:?}"
    );
}
