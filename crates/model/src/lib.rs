//! # bruck-model — α–β–γ cost model and communication-trace simulator
//!
//! Stands in for the Theta / Cori / Stampede supercomputers of the paper's
//! evaluation: every algorithm in `bruck-core` has a *byte-exact* trace
//! generator here ([`uniform_trace`], [`nonuniform_trace`]) that replicates
//! its routing without moving payloads, and a [`MachineModel`] prices each
//! step (latency α, injection overhead, bandwidth β, memcpy γ, datatype
//! engine overhead). This is what lets the figure harnesses sweep to
//! `P = 32768` on a laptop.
//!
//! Validation: integration tests in the workspace root run the real
//! implementations under `bruck_comm::CountingComm` and assert the traces
//! predict the wire bytes of every rank at every step exactly.
//!
//! ```
//! use bruck_model::{predict, MachineModel, NonuniformAlgo};
//! use bruck_workload::Distribution;
//!
//! let theta = MachineModel::theta_like();
//! let two_phase = predict(
//!     NonuniformAlgo::TwoPhaseBruck, Distribution::Uniform, 1, 4096, 256, &theta);
//! let vendor = predict(
//!     NonuniformAlgo::Vendor, Distribution::Uniform, 1, 4096, 256, &theta);
//! assert!(two_phase < vendor); // the paper's headline regime
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collective;
mod fit;
mod machine;
mod par;
mod radix;
mod source;
mod sweep;
mod trace;
mod tracegen;
mod tuner;

pub use collective::{
    allgatherv_trace, allreduce_trace, reduce_scatter_trace, AllgathervModel, AllreduceModel,
    ReduceScatterModel,
};
pub use fit::{calibrate, fit_error, FitSample};
pub use par::par_map;
pub use machine::MachineModel;
pub use radix::{
    radix_schedule as radix_trace_schedule, two_phase_radix_trace, zero_rotation_radix_trace,
};
pub use source::{DistSource, MatrixSource, SizeSource};
pub use sweep::{crossover_n, predict, sweep, SweepPoint};
pub use trace::{CommTrace, RankLoad, Step, StepKind};
pub use tracegen::{nonuniform_trace, uniform_trace, NonuniformAlgo, RankSample, UniformAlgo};
pub use tuner::{
    predict_config, AutoTuner, TuningEntry, TuningKey, TuningTable, TUNING_TABLE_HEADER,
};
