//! Local relation storage with a join index on the first column.

use std::collections::{HashMap, HashSet};

use crate::Tuple;

/// A local (per-rank shard of a) binary relation: a tuple set plus a hash
/// index keyed by the first column, which is what the semi-naive join probes.
#[derive(Debug, Default, Clone)]
pub struct Relation {
    tuples: HashSet<Tuple>,
    index: HashMap<u64, Vec<u64>>,
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of tuples (deduplicating).
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new();
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Insert; returns true if the tuple is new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        if self.tuples.insert(t) {
            self.index.entry(t.0).or_default().push(t.1);
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All second-column values paired with `key` in the first column.
    pub fn matches(&self, key: u64) -> &[u64] {
        self.index.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Iterate tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Join: for each `(x, y)` in `probe`, emit `f(x, z)` for each `(y, z)`
    /// here (probe's second column against our first column — the TC step).
    pub fn join_on_first<F: FnMut(u64, u64, u64)>(&self, probe: &[Tuple], mut f: F) {
        for &(x, y) in probe {
            for &z in self.matches(y) {
                f(x, y, z);
            }
        }
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Self::from_tuples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups_and_indexes() {
        let mut r = Relation::new();
        assert!(r.insert((1, 2)));
        assert!(!r.insert((1, 2)));
        assert!(r.insert((1, 3)));
        assert_eq!(r.len(), 2);
        let mut m = r.matches(1).to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![2, 3]);
        assert!(r.matches(9).is_empty());
    }

    #[test]
    fn join_on_first_matches_nested_loops() {
        let e = Relation::from_tuples([(2u64, 10u64), (2, 11), (3, 12)]);
        let probe = vec![(100u64, 2u64), (101, 3), (102, 4)];
        let mut got = Vec::new();
        e.join_on_first(&probe, |x, _y, z| got.push((x, z)));
        got.sort_unstable();
        assert_eq!(got, vec![(100, 10), (100, 11), (101, 12)]);
    }

    #[test]
    fn from_iterator_collects() {
        let r: Relation = [(1u64, 1u64), (1, 1), (2, 2)].into_iter().collect();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&(2, 2)));
    }
}
